(* End-to-end protocol tests: Q(decrypt(server_answer)) = Q(D) across
   schemes, documents and query shapes; plus system-level security
   checks. *)

module Doc = Xmlcore.Doc
module Sc = Secure.Sc
module System = Secure.System
module Scheme = Secure.Scheme

let check_equal sys label query_string =
  let query = Xpath.Parser.parse query_string in
  let expected = System.reference sys query in
  let got, _ = System.evaluate sys query in
  Helpers.check_trees_equal (label ^ ": " ^ query_string) expected got

let health_queries =
  [ "//patient"; "//patient/pname"; "//SSN"; "//disease"; "//insurance";
    "//insurance/policy#"; "//insurance/@coverage";
    "//patient[pname='Betty']//disease";
    "//patient[.//disease='diarrhea']/pname";
    "//patient[.//insurance//@coverage>='10000']//SSN";
    "/hospital/patient/treat/doctor"; "//treat[disease='leukemia']/doctor";
    "//patient[age>=40]/pname"; "//patient[age>40]/pname";
    "//patient[SSN='763895']"; "//treat[doctor!='Smith']/disease";
    "//nonexistent"; "//patient[pname='Nobody']"; "/hospital"; "//*";
    "//patient//*"; "//treat[disease='diarrhea'][doctor='Smith']";
    (* extended axes through the whole protocol *)
    "//disease/.."; "//disease/parent::treat/doctor";
    "//pname/following-sibling::SSN";
    "//insurance/following-sibling::insurance";
    "//SSN[../pname='Betty']";
    "//treat[following-sibling::age]/disease";
    "//disease[.='leukemia']/../doctor";
    "//SSN/preceding-sibling::pname";
    "//patient[pname='Betty']/SSN/following::disease";
    "//age/preceding::SSN"; "//treat/following::insurance";
    "//insurance[preceding-sibling::insurance]";
    (* boolean predicates through the whole protocol *)
    "//patient[pname='Betty' or pname='Matt']/age";
    "//treat[disease='flu' and doctor='Walker']/doctor";
    "//patient[not(age>=40)]/pname";
    "//patient[(pname='Matt' or pname='Nobody') and not(age<40)]/SSN";
    "//treat[not(disease='diarrhea')]/disease";
    "//patient[insurance and not(.//disease='leukemia')]/pname" ]

let healthcare_all_schemes () =
  let doc = Workload.Health.doc () in
  let scs = Workload.Health.constraints () in
  List.iter
    (fun kind ->
      let sys, _ = System.setup doc scs kind in
      List.iter (check_equal sys (Scheme.kind_to_string kind)) health_queries)
    Scheme.all_kinds

let naive_agrees () =
  let doc = Workload.Health.doc () in
  let scs = Workload.Health.constraints () in
  let sys, _ = System.setup doc scs Scheme.Opt in
  List.iter
    (fun q ->
      let query = Xpath.Parser.parse q in
      let expected = System.reference sys query in
      let got, cost = System.naive_evaluate sys query in
      Helpers.check_trees_equal ("naive: " ^ q) expected got;
      Alcotest.(check int) "naive ships everything"
        (Scheme.block_count (System.scheme sys))
        cost.System.blocks_returned)
    health_queries

let generated_hospital () =
  let doc = Workload.Health.generate ~patients:60 () in
  let scs = Workload.Health.constraints () in
  List.iter
    (fun kind ->
      let sys, _ = System.setup doc scs kind in
      List.iter
        (fun fam ->
          List.iter
            (fun q ->
              let expected = System.reference sys q in
              let got, _ = System.evaluate sys q in
              Helpers.check_trees_equal
                (Printf.sprintf "%s/%s %s" (Scheme.kind_to_string kind)
                   (Workload.Querygen.family_to_string fam)
                   (Xpath.Ast.to_string q))
                expected got)
            (Workload.Querygen.generate doc fam ~count:4))
        Workload.Querygen.all_families)
    Scheme.all_kinds

let random_docs_random_queries =
  QCheck.Test.make ~name:"random docs: secure eval = reference" ~count:25
    Helpers.arbitrary_doc
    (fun doc ->
      let scs = [ Sc.parse "//item:(/name, /price)"; Sc.parse "//c" ] in
      List.for_all
        (fun kind ->
          let sys, _ = System.setup doc scs kind in
          List.for_all
            (fun q ->
              let query = Xpath.Parser.parse q in
              let expected = Helpers.norm_trees (System.reference sys query) in
              let got, _ = System.evaluate sys query in
              expected = Helpers.norm_trees got)
            [ "//a"; "//item"; "//item/name"; "//b//c"; "//a[b='x']";
              "//item[price>=20]/name"; "//item[name='hello']"; "//d";
              "//a/b/c"; "//*[name]" ])
        Scheme.all_kinds)

let value_queries_on_numeric_domains () =
  let doc = Workload.Xmark.generate ~persons:120 () in
  let scs = Workload.Xmark.constraints () in
  let sys, _ = System.setup doc scs Scheme.Opt in
  List.iter (check_equal sys "xmark")
    [ "//person[profile/@income>=60000]/emailaddress";
      "//person[profile/@income<30000]/emailaddress";
      "//profile[@income=24000]";
      "//person[name='Kasidit Luo']/creditcard";
      "//person[address/city='Seoul']/name";
      "//profile[age>=65]" ]

(* --- Aggregates (Section 6.4) ------------------------------------- *)

let aggregate_queries =
  [ "//age"; "//insurance/@coverage"; "//disease"; "//patient/SSN";
    "//patient[age>=50]/age"; "//treat/disease"; "//absent" ]

let aggregates_match_reference () =
  let doc = Workload.Health.generate ~patients:80 () in
  let scs = Workload.Health.constraints () in
  List.iter
    (fun kind ->
      let sys, _ = System.setup doc scs kind in
      List.iter
        (fun q ->
          let query = Xpath.Parser.parse q in
          List.iter
            (fun dir ->
              let expected = System.reference_aggregate sys dir query in
              let got, _ = System.aggregate sys dir query in
              Alcotest.(check (option string))
                (Printf.sprintf "%s %s %s" (Scheme.kind_to_string kind)
                   (match dir with `Min -> "min" | `Max -> "max")
                   q)
                expected got)
            [ `Min; `Max ])
        aggregate_queries)
    Scheme.all_kinds

let aggregate_ships_one_block () =
  let doc = Workload.Health.generate ~patients:80 () in
  let scs = Workload.Health.constraints () in
  let sys, _ = System.setup doc scs Scheme.Top in
  (* Structural MIN/MAX under the coarsest scheme must still ship at
     most one block — that is the whole point of the OPE order. *)
  let _, cost = System.aggregate sys `Max (Xpath.Parser.parse "//age") in
  Alcotest.(check bool) "at most one block" true (cost.System.blocks_returned <= 1);
  (* With value predicates the fast path is off; correctness over
     block-shipping, but the answer must still be right (checked above). *)
  let n, _ = System.count sys (Xpath.Parser.parse "//patient") in
  Alcotest.(check int) "count" 80 n

let numeric_aggregate_semantics () =
  let doc = Workload.Health.doc () in
  let scs = Workload.Health.constraints () in
  let sys, _ = System.setup doc scs Scheme.Opt in
  (* ages 35 and 40: numeric max is 40 (string compare would agree
     here, so also check a coverage value where they differ). *)
  let got, _ = System.aggregate sys `Max (Xpath.Parser.parse "//age") in
  Alcotest.(check (option string)) "max age" (Some "40") got;
  (* coverage: {1000000, 10000, 5000}: numeric max 1000000, but string
     max would be "5000". *)
  let got, _ = System.aggregate sys `Max (Xpath.Parser.parse "//insurance/@coverage") in
  Alcotest.(check (option string)) "numeric max" (Some "1000000") got;
  let got, _ = System.aggregate sys `Min (Xpath.Parser.parse "//insurance/@coverage") in
  Alcotest.(check (option string)) "numeric min" (Some "5000") got

(* --- Translation internals ---------------------------------------- *)

let translation_hides_sensitive_tags () =
  let doc = Workload.Health.doc () in
  let scs = Workload.Health.constraints () in
  let sys, _ = System.setup doc scs Scheme.Opt in
  let q = Xpath.Parser.parse "//patient[.//insurance//@coverage>='10000']//SSN" in
  let translated = Secure.Client.translate (System.client sys) q in
  let rendered = Secure.Squery.to_string translated in
  (* insurance and @coverage are encrypted under opt: their plaintext
     tags must not appear in the translated query; the comparison
     literal must be gone as well. *)
  let contains needle haystack =
    let n = String.length needle and h = String.length haystack in
    let rec at i = i + n <= h && (String.sub haystack i n = needle || at (i + 1)) in
    at 0
  in
  Alcotest.(check bool) "insurance hidden" false (contains "insurance" rendered);
  Alcotest.(check bool) "coverage hidden" false (contains "coverage" rendered);
  Alcotest.(check bool) "literal hidden" false (contains "10000" rendered);
  Alcotest.(check bool) "has value predicate" true
    (Secure.Squery.has_value_predicate translated)

let translation_deterministic () =
  let doc = Workload.Health.doc () in
  let scs = Workload.Health.constraints () in
  let sys, _ = System.setup doc scs Scheme.Opt in
  let q = Xpath.Parser.parse "//insurance/policy#" in
  let t1 = Secure.Squery.to_string (Secure.Client.translate (System.client sys) q) in
  let t2 = Secure.Squery.to_string (Secure.Client.translate (System.client sys) q) in
  Alcotest.(check string) "stable tokens" t1 t2

(* --- System-level security checks -------------------------------- *)

let every_sensitive_node_encrypted () =
  let doc = Workload.Health.doc () in
  let scs = Workload.Health.constraints () in
  List.iter
    (fun kind ->
      let sys, _ = System.setup doc scs kind in
      let scheme = System.scheme sys in
      (* Node-type SCs: every binding inside a block. *)
      List.iter
        (fun sc ->
          match sc with
          | Sc.Node_type p ->
            List.iter
              (fun x ->
                Alcotest.(check bool) "binding encrypted" true
                  (Scheme.in_some_block doc scheme x))
              (Xpath.Eval.eval doc p)
          | Sc.Association _ -> ())
        scs)
    Scheme.all_kinds

let btree_distribution_not_plaintext () =
  (* The server-visible B-tree key distribution must not reproduce the
     plaintext histogram of any sensitive attribute. *)
  let doc = Workload.Health.generate ~patients:100 () in
  let scs = Workload.Health.constraints () in
  let sys, _ = System.setup doc scs Scheme.Opt in
  let meta = System.metadata sys in
  let keys_hist = Hashtbl.create 256 in
  Btree.iter meta.Secure.Metadata.btree (fun k _ ->
      Hashtbl.replace keys_hist k (1 + Option.value ~default:0 (Hashtbl.find_opt keys_hist k)));
  let observed = Hashtbl.fold (fun k c acc -> (k, c) :: acc) keys_hist [] in
  let known = Xmlcore.Stats.value_histogram doc ~tag:"disease" in
  let result = Secure.Attack.frequency_attack ~known ~observed in
  Alcotest.(check (float 0.11)) "crack rate ~0" 0.0 result.Secure.Attack.crack_rate

let candidates_indistinguishable () =
  (* Definition 3.1, empirically: two candidate databases that differ
     only in which patient has which disease (same value multiset) must
     encrypt to the same total size and expose identical value-index
     key histograms. *)
  let doc = Workload.Health.doc () in
  let swap =
    [ Secure.Update.Set_value
        (Xpath.Parser.parse "//patient[pname='Betty']/treat[disease='diarrhea']/disease",
         "leukemia");
      Secure.Update.Set_value
        (Xpath.Parser.parse "//patient[pname='Matt']/treat[disease='leukemia']/disease",
         "diarrhea") ]
  in
  let doc' = Secure.Update.apply_all doc swap in
  (* Same value multiset per attribute. *)
  Alcotest.(check (list (pair string int))) "same disease histogram"
    (Xmlcore.Stats.value_histogram doc ~tag:"disease")
    (Xmlcore.Stats.value_histogram doc' ~tag:"disease");
  let scs = Workload.Health.constraints () in
  let sys1, _ = System.setup ~master:"indist" doc scs Scheme.Opt in
  let sys2, _ = System.setup ~master:"indist" doc' scs Scheme.Opt in
  (* (1) |E(D)| = |E(D')| — the size-based attacker learns nothing. *)
  Alcotest.(check int) "equal encrypted size"
    (Secure.Encrypt.encrypted_bytes (System.db sys1))
    (Secure.Encrypt.encrypted_bytes (System.db sys2));
  (* (2) identical observable value-index distribution. *)
  let histogram sys =
    let h = Hashtbl.create 128 in
    Btree.iter (System.metadata sys).Secure.Metadata.btree (fun k _ ->
        Hashtbl.replace h k (1 + Option.value ~default:0 (Hashtbl.find_opt h k)));
    List.sort compare (Hashtbl.fold (fun k c acc -> (k, c) :: acc) h [])
  in
  Alcotest.(check (list (pair int64 int))) "equal index histograms"
    (histogram sys1) (histogram sys2);
  (* And the structural index is byte-identical (same shape, same
     weights): the attacker cannot tell the candidates apart. *)
  Alcotest.(check int) "equal metadata size"
    (Secure.Metadata.metadata_bytes (System.metadata sys1))
    (Secure.Metadata.metadata_bytes (System.metadata sys2))

let random_association_scs =
  QCheck.Test.make ~name:"random docs with random association SCs" ~count:15
    QCheck.(pair Helpers.arbitrary_doc (pair (int_bound 6) (int_bound 6)))
    (fun (doc, (i, j)) ->
      (* Pick two leaf tags from the pool as association endpoints. *)
      let tags = Xmlcore.Stats.leaf_tags doc in
      match tags with
      | [] -> true
      | _ ->
        let tag_at k = List.nth tags (k mod List.length tags) in
        let t1 = tag_at i and t2 = tag_at j in
        if String.equal t1 t2 then true
        else begin
          let sc = Sc.parse (Printf.sprintf "//root:(//%s, //%s)" t1 t2) in
          List.for_all
            (fun kind ->
              let sys, _ = System.setup doc [ sc ] kind in
              List.for_all
                (fun q ->
                  let query = Xpath.Parser.parse q in
                  Helpers.norm_trees (System.reference sys query)
                  = Helpers.norm_trees (fst (System.evaluate sys query)))
                [ "//" ^ t1; "//" ^ t2; "//a"; "//item[name='hello']";
                  Printf.sprintf "//*[%s]" t1 ])
            [ Scheme.Opt; Scheme.Top ]
        end)

let setup_costs_sane () =
  let doc = Workload.Health.generate ~patients:50 () in
  let scs = Workload.Health.constraints () in
  let _, opt_cost = System.setup doc scs Scheme.Opt in
  let _, sub_cost = System.setup doc scs Scheme.Sub in
  let _, top_cost = System.setup doc scs Scheme.Top in
  (* Scheme size ordering: opt <= sub (sub coarsens upward) and
     opt <= top (top is everything). *)
  Alcotest.(check bool) "opt smallest" true
    (opt_cost.System.scheme_size_nodes <= sub_cost.System.scheme_size_nodes
     && opt_cost.System.scheme_size_nodes <= top_cost.System.scheme_size_nodes);
  (* Sub's many wrapped blocks cost more stored bytes than top's one. *)
  Alcotest.(check bool) "sub bigger than top on server" true
    (sub_cost.System.server_data_bytes >= top_cost.System.server_data_bytes)

let cost_fields_populated () =
  let doc = Workload.Health.generate ~patients:30 () in
  let scs = Workload.Health.constraints () in
  let sys, _ = System.setup doc scs Scheme.Opt in
  let q = Xpath.Parser.parse "//patient[.//disease='diarrhea']/pname" in
  let _, cost = System.evaluate sys q in
  Alcotest.(check bool) "totals add up" true
    (Float.abs
       (System.total_ms cost
        -. (cost.System.translate_ms +. cost.System.server_ms
            +. cost.System.transmit_ms +. cost.System.decrypt_ms
            +. cost.System.postprocess_ms))
     < 1e-9);
  Alcotest.(check bool) "transmit consistent" true
    (Float.abs
       (cost.System.transmit_ms
        -. (float_of_int cost.System.transmit_bytes /. System.link_bytes_per_ms))
     < 1e-9)

let encrypted_only_index_policy () =
  let doc = Workload.Health.generate ~patients:50 () in
  let scs = Workload.Health.constraints () in
  let full, _ = System.setup doc scs Scheme.Opt in
  let lean, _ =
    System.setup ~value_index:Secure.Metadata.Encrypted_only doc scs Scheme.Opt
  in
  (* The lean index is genuinely smaller. *)
  Alcotest.(check bool) "fewer index entries" true
    (Secure.Metadata.btree_entry_count (System.metadata lean)
     < Secure.Metadata.btree_entry_count (System.metadata full));
  (* Correctness is unchanged, including value predicates on attributes
     that are no longer indexed (age, @coverage are plaintext under
     opt): the server keeps every candidate, the client filters. *)
  List.iter
    (fun q ->
      let query = Xpath.Parser.parse q in
      Helpers.check_trees_equal ("lean " ^ q)
        (System.reference lean query)
        (fst (System.evaluate lean query)))
    [ "//patient[age>=60]/pname"; "//patient[.//disease='flu']/SSN";
      "//insurance[@coverage>=500000]";
      "//patient[age>=60][.//disease='flu']/pname" ];
  (* Unindexed attributes fall back to the ordinary protocol for
     aggregates and still agree. *)
  List.iter
    (fun dir ->
      Alcotest.(check (option string)) "aggregate fallback"
        (System.reference_aggregate lean dir (Xpath.Parser.parse "//age"))
        (fst (System.aggregate lean dir (Xpath.Parser.parse "//age"))))
    [ `Min; `Max ]

let key_rotation () =
  let doc = Workload.Health.doc () in
  let scs = Workload.Health.constraints () in
  let sys, _ = System.setup ~master:"before" doc scs Scheme.Opt in
  let bundle = Secure.Persist.to_string sys in
  let rotated, _ = System.rotate sys ~new_master:"after" in
  (* Same answers under the new keys. *)
  let q = Xpath.Parser.parse "//patient[pname='Betty']//disease" in
  Helpers.check_trees_equal "rotation preserves answers"
    (fst (System.evaluate sys q))
    (fst (System.evaluate rotated q));
  (* Ciphertexts actually changed. *)
  let first_ct s = (List.hd (System.db s).Secure.Encrypt.blocks).Secure.Encrypt.ciphertext in
  Alcotest.(check bool) "blocks re-encrypted" false (first_ct sys = first_ct rotated);
  (* The old bundle does not authenticate under the new master. *)
  (match Secure.Persist.of_string ~master:"after" bundle with
   | _ -> Alcotest.fail "old bundle must not load under the new master"
   | exception Secure.Persist.Corrupt _ -> ())

let aes_hosted_system () =
  (* The whole protocol under the AES suite, and persistence carries the
     suite. *)
  let doc = Workload.Health.doc () in
  let scs = Workload.Health.constraints () in
  let sys, _ =
    System.setup ~master:"aes-host" ~cipher:Crypto.Cipher.Aes doc scs Scheme.Opt
  in
  Alcotest.(check bool) "suite recorded" true (System.cipher sys = Crypto.Cipher.Aes);
  List.iter (check_equal sys "aes")
    [ "//patient[pname='Betty']//disease"; "//insurance";
      "//patient[.//insurance//@coverage>='10000']//SSN" ];
  let restored =
    Secure.Persist.of_string ~master:"aes-host" (Secure.Persist.to_string sys)
  in
  Alcotest.(check bool) "suite persisted" true
    (System.cipher restored = Crypto.Cipher.Aes);
  let q = Xpath.Parser.parse "//patient[pname='Betty']//disease" in
  Helpers.check_trees_equal "aes persisted roundtrip"
    (fst (System.evaluate sys q))
    (fst (System.evaluate restored q))

let union_queries () =
  let doc = Workload.Health.doc () in
  let scs = Workload.Health.constraints () in
  List.iter
    (fun kind ->
      let sys, _ = System.setup doc scs kind in
      List.iter
        (fun q ->
          let branches = Xpath.Parser.parse_union q in
          let expected = System.reference_union sys branches in
          let got, _ = System.evaluate_union sys branches in
          Helpers.check_trees_equal
            (Printf.sprintf "%s union %s" (Scheme.kind_to_string kind) q)
            expected got)
        [ "//pname | //SSN"; "//disease | //treat/disease";
          "//patient[age>=40]/pname | //treat[disease='flu']/doctor";
          "//insurance | //nonexistent"; "//pname" ])
    [ Scheme.Opt; Scheme.Top ]

let empty_answers () =
  let doc = Workload.Health.doc () in
  let scs = Workload.Health.constraints () in
  let sys, _ = System.setup doc scs Scheme.Opt in
  let answers, cost = System.evaluate sys (Xpath.Parser.parse "//nothing/here") in
  Alcotest.(check int) "no answers" 0 (List.length answers);
  Alcotest.(check int) "no blocks" 0 cost.System.blocks_returned

let () =
  Alcotest.run "system"
    [ ( "correctness",
        [ Alcotest.test_case "healthcare x all schemes" `Quick healthcare_all_schemes;
          Alcotest.test_case "naive baseline" `Quick naive_agrees;
          Alcotest.test_case "generated hospital" `Slow generated_hospital;
          Alcotest.test_case "xmark value queries" `Slow value_queries_on_numeric_domains;
          Alcotest.test_case "union queries" `Quick union_queries;
          Alcotest.test_case "aes cipher suite" `Quick aes_hosted_system;
          Alcotest.test_case "encrypted-only value index" `Quick encrypted_only_index_policy;
          Alcotest.test_case "key rotation" `Quick key_rotation;
          Alcotest.test_case "empty answers" `Quick empty_answers ]
        @ List.map QCheck_alcotest.to_alcotest [ random_docs_random_queries ] );
      ( "aggregates",
        [ Alcotest.test_case "match reference" `Slow aggregates_match_reference;
          Alcotest.test_case "one block max" `Quick aggregate_ships_one_block;
          Alcotest.test_case "numeric semantics" `Quick numeric_aggregate_semantics ] );
      ( "translation",
        [ Alcotest.test_case "hides sensitive tags" `Quick translation_hides_sensitive_tags;
          Alcotest.test_case "deterministic" `Quick translation_deterministic ] );
      ( "security",
        [ Alcotest.test_case "sensitive nodes encrypted" `Quick every_sensitive_node_encrypted;
          Alcotest.test_case "btree hides distribution" `Slow btree_distribution_not_plaintext;
          Alcotest.test_case "candidate indistinguishability" `Quick
            candidates_indistinguishable ]
        @ List.map QCheck_alcotest.to_alcotest [ random_association_scs ] );
      ( "costs",
        [ Alcotest.test_case "setup ordering" `Quick setup_costs_sane;
          Alcotest.test_case "cost fields" `Quick cost_fields_populated ] ) ]
