(* Medium-scale end-to-end stress: catches anything that only breaks
   past toy sizes (float precision in DSI intervals, join scaling,
   OPESS domains with hundreds of distinct values, block selection over
   thousands of blocks). *)

module System = Secure.System
module Qg = Workload.Querygen

let norm = Helpers.norm_trees

let run_workload name doc scs kinds =
  List.iter
    (fun kind ->
      let sys, _ = System.setup doc scs kind in
      List.iter
        (fun fam ->
          List.iter
            (fun q ->
              let expected = norm (System.reference sys q) in
              let got, _ = System.evaluate sys q in
              Alcotest.(check (list string))
                (Printf.sprintf "%s/%s/%s %s" name
                   (Secure.Scheme.kind_to_string kind)
                   (Qg.family_to_string fam) (Xpath.Ast.to_string q))
                expected (norm got))
            (Qg.generate doc fam ~count:6))
        Qg.all_families)
    kinds

let xmark_medium () =
  let doc = Workload.Xmark.generate ~persons:3000 () in
  run_workload "xmark" doc (Workload.Xmark.constraints ())
    [ Secure.Scheme.Opt; Secure.Scheme.Top ]

let nasa_medium () =
  let doc = Workload.Nasa.generate ~datasets:400 () in
  run_workload "nasa" doc (Workload.Nasa.constraints ())
    [ Secure.Scheme.Opt; Secure.Scheme.Sub ]

let spine_doc depth =
  let rec spine d =
    if d = 0 then Xmlcore.Tree.leaf "leaf" (string_of_int d)
    else
      Xmlcore.Tree.element "level"
        [ Xmlcore.Tree.leaf "marker" (string_of_int d); spine (d - 1) ]
  in
  Xmlcore.Doc.of_tree (Xmlcore.Tree.element "root" [ spine depth ])

let deep_document () =
  (* Depth 18 is comfortably inside double-precision resolution
     (5^18 << 2^53); real XML rarely exceeds depth ~15. *)
  let doc = spine_doc 18 in
  let assignment = Dsi.Assign.assign ~key:"deep" doc in
  (match Dsi.Assign.validate assignment with
   | Ok () -> ()
   | Error e -> Alcotest.fail e);
  let scs = [ Secure.Sc.parse "//leaf" ] in
  let sys, _ = System.setup doc scs Secure.Scheme.Opt in
  List.iter
    (fun q ->
      let query = Xpath.Parser.parse q in
      Helpers.check_trees_equal q
        (System.reference sys query)
        (fst (System.evaluate sys query)))
    [ "//leaf"; "//level/level/level//leaf"; "//marker[.='7']"; "//level[marker='3']/leaf" ]

let too_deep_fails_loudly () =
  (* Past the precision budget the assignment must refuse with the
     documented diagnostic, not silently corrupt the index. *)
  let doc = spine_doc 40 in
  (match Dsi.Assign.assign ~key:"deep" doc with
   | _ -> Alcotest.fail "expected a precision failure"
   | exception Invalid_argument msg ->
     Alcotest.(check bool) "explains the precision limit" true
       (String.length msg > 40))

let wide_document () =
  (* 20k children under one node stresses sibling gap arithmetic and
     the child-axis sweeps. *)
  let doc =
    Xmlcore.Doc.of_tree
      (Xmlcore.Tree.element "root"
         (List.init 20_000 (fun i ->
              Xmlcore.Tree.leaf "item" (string_of_int (i mod 100)))))
  in
  let assignment = Dsi.Assign.assign ~key:"wide" doc in
  (match Dsi.Assign.validate assignment with
   | Ok () -> ()
   | Error e -> Alcotest.fail e);
  let sys, _ = System.setup doc [ Secure.Sc.parse "//item" ] Secure.Scheme.Opt in
  let q = Xpath.Parser.parse "//item[.='42']" in
  Alcotest.(check int) "two hundred hits" 200
    (List.length (fst (System.evaluate sys q)))

let () =
  Alcotest.run "stress"
    [ ( "medium scale",
        [ Alcotest.test_case "xmark 3000 persons" `Slow xmark_medium;
          Alcotest.test_case "nasa 400 datasets" `Slow nasa_medium ] );
      ( "extreme shapes",
        [ Alcotest.test_case "depth 18" `Quick deep_document;
          Alcotest.test_case "too deep fails loudly" `Quick too_deep_fails_loudly;
          Alcotest.test_case "fanout 20k" `Slow wide_document ] ) ]
