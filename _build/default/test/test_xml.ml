(* XML substrate tests: tree ops, indexing, parser, printer, stats. *)

module Tree = Xmlcore.Tree
module Doc = Xmlcore.Doc

let sample () = Workload.Health.tree ()

(* --- Tree ------------------------------------------------------- *)

let tree_basics () =
  let t = Tree.element "a" [ Tree.leaf "b" "1"; Tree.attribute "x" "2" ] in
  Alcotest.(check (option string)) "tag" (Some "a") (Tree.tag t);
  Alcotest.(check int) "depth" 2 (Tree.depth t);
  Alcotest.(check bool) "attr tag" true (Tree.is_attribute_tag "@x");
  Alcotest.(check bool) "normal tag" false (Tree.is_attribute_tag "x");
  Alcotest.(check (list (pair string string))) "leaf values"
    [ "b", "1"; "@x", "2" ] (Tree.leaf_values t);
  Alcotest.(check bool) "equal self" true (Tree.equal t t);
  Alcotest.(check bool) "not equal" false (Tree.equal t (Tree.leaf "a" "1"))

(* --- Doc -------------------------------------------------------- *)

let doc_indexing () =
  let doc = Doc.of_tree (sample ()) in
  Alcotest.(check string) "root tag" "hospital" (Doc.tag doc (Doc.root doc));
  Alcotest.(check int) "two patients" 2
    (List.length (Doc.nodes_with_tag doc "patient"));
  (* Preorder: descendants of a node form a contiguous range. *)
  List.iter
    (fun p ->
      let ds = Doc.descendants doc p in
      List.iteri (fun i d -> Alcotest.(check int) "contiguous" (p + 1 + i) d) ds;
      List.iter
        (fun d -> Alcotest.(check bool) "ancestor" true (Doc.is_ancestor doc p d))
        ds)
    (Doc.nodes_with_tag doc "patient");
  Alcotest.(check bool) "root not its own ancestor" false
    (Doc.is_ancestor doc 0 0);
  Alcotest.(check int) "height" 3 (Doc.height doc)

let doc_roundtrip_prop =
  QCheck.Test.make ~name:"of_tree then to_tree = id" ~count:100
    Helpers.arbitrary_doc
    (fun doc -> Tree.equal (Doc.to_tree doc) (Doc.to_tree doc))

let doc_parent_child_inverse =
  QCheck.Test.make ~name:"parent of child = self" ~count:100
    Helpers.arbitrary_doc
    (fun doc ->
      Doc.fold doc
        (fun ok n ->
          ok
          && List.for_all (fun c -> Doc.parent doc c = Some n) (Doc.children doc n))
        true)

let doc_subtree_sizes =
  QCheck.Test.make ~name:"subtree sizes consistent" ~count:100
    Helpers.arbitrary_doc
    (fun doc ->
      Doc.fold doc
        (fun ok n ->
          ok
          && Doc.subtree_node_count doc n
             = 1
               + List.fold_left
                   (fun acc c -> acc + Doc.subtree_node_count doc c)
                   0 (Doc.children doc n))
        true)

let doc_rejects_mixed () =
  Alcotest.check_raises "mixed content"
    (Invalid_argument "Doc.of_tree: mixed content (text beside elements)")
    (fun () ->
      ignore (Doc.of_tree (Tree.Element ("a", [ Tree.Text "x"; Tree.element "b" [] ]))))

(* --- Parser / Printer ------------------------------------------- *)

let parse s = Xmlcore.Parser.parse s

let parser_basics () =
  let t = parse "<a><b>hi</b><c/></a>" in
  Alcotest.(check (option string)) "root" (Some "a") (Tree.tag t);
  let t = parse {|<a k="v" n='2'><b>x</b></a>|} in
  (match t with
   | Tree.Element ("a", [ attr1; attr2; _b ]) ->
     Alcotest.(check bool) "attr order" true
       (Tree.equal attr1 (Tree.attribute "k" "v")
        && Tree.equal attr2 (Tree.attribute "n" "2"))
   | _ -> Alcotest.fail "unexpected shape")

let parser_entities () =
  (match parse "<a>x &amp; y &lt;z&gt; &quot;q&quot; &#65;&#x42;</a>" with
   | Tree.Element ("a", [ Tree.Text v ]) ->
     Alcotest.(check string) "decoded" "x & y <z> \"q\" AB" v
   | _ -> Alcotest.fail "unexpected shape")

let parser_cdata_comments () =
  (match parse "<a><!-- note --><![CDATA[1 < 2 & 3]]></a>" with
   | Tree.Element ("a", [ Tree.Text v ]) ->
     Alcotest.(check string) "cdata" "1 < 2 & 3" v
   | _ -> Alcotest.fail "unexpected shape");
  let t = parse "<?xml version=\"1.0\"?><!DOCTYPE a [<!ELEMENT a ANY>]><a/>" in
  Alcotest.(check (option string)) "prolog skipped" (Some "a") (Tree.tag t)

let parser_whitespace () =
  (match parse "<a>\n  <b>x</b>\n  <c>y</c>\n</a>" with
   | Tree.Element ("a", [ _; _ ]) -> ()
   | _ -> Alcotest.fail "insignificant whitespace should vanish")

(* Fuzzing: arbitrary bytes must either parse or raise Parse_error —
   never crash with anything else. *)
let parser_fuzz_total =
  QCheck.Test.make ~name:"parser is total (Parse_error or success)" ~count:2000
    QCheck.string
    (fun s ->
      match Xmlcore.Parser.parse s with
      | _ -> true
      | exception Xmlcore.Parser.Parse_error _ -> true)

(* Mutation fuzzing: valid documents with random single-byte edits. *)
let parser_fuzz_mutations =
  QCheck.Test.make ~name:"mutated valid XML never crashes the parser" ~count:500
    QCheck.(pair Helpers.arbitrary_doc (pair small_nat (int_bound 255)))
    (fun (doc, (pos, byte)) ->
      let s = Xmlcore.Printer.doc_to_string doc in
      let b = Bytes.of_string s in
      if Bytes.length b = 0 then true
      else begin
        Bytes.set b (pos mod Bytes.length b) (Char.chr byte);
        match Xmlcore.Parser.parse (Bytes.to_string b) with
        | _ -> true
        | exception Xmlcore.Parser.Parse_error _ -> true
        (* Mixed-content documents can surface as Invalid_argument from
           Doc-level checks only; the parser itself must not raise it. *)
      end)

let parser_errors () =
  let fails s =
    match parse s with
    | _ -> Alcotest.fail (Printf.sprintf "%S should not parse" s)
    | exception Xmlcore.Parser.Parse_error _ -> ()
  in
  fails "<a><b></a></b>";
  fails "<a>";
  fails "no markup";
  fails "<a></a><b></b>";
  fails "<a>text<b/></a>" (* mixed content *)

let printer_escaping () =
  let t = Tree.element "a" [ Tree.attribute "k" "x\"<>&"; Tree.leaf "b" "1<2&3" ] in
  let s = Xmlcore.Printer.tree_to_string t in
  Alcotest.(check string) "escaped"
    "<a k=\"x&quot;&lt;&gt;&amp;\"><b>1&lt;2&amp;3</b></a>" s;
  Alcotest.(check bool) "reparses" true (Tree.equal t (parse s))

let roundtrip_prop =
  QCheck.Test.make ~name:"parse after print = id" ~count:200
    Helpers.arbitrary_doc
    (fun doc ->
      let t = Doc.to_tree doc in
      Tree.equal t (parse (Xmlcore.Printer.tree_to_string t)))

let roundtrip_indented_prop =
  QCheck.Test.make ~name:"parse after indented print = id" ~count:100
    Helpers.arbitrary_doc
    (fun doc ->
      let t = Doc.to_tree doc in
      Tree.equal t (parse (Xmlcore.Printer.tree_to_string ~indent:true t)))

let serialized_size_agrees =
  QCheck.Test.make ~name:"serialized_size = length of output" ~count:100
    Helpers.arbitrary_doc
    (fun doc ->
      let t = Doc.to_tree doc in
      Xmlcore.Printer.serialized_size t
      = String.length (Xmlcore.Printer.tree_to_string t))

(* --- SAX ----------------------------------------------------------- *)

let sax_agrees_with_dom =
  QCheck.Test.make ~name:"SAX tree = DOM tree" ~count:200 Helpers.arbitrary_doc
    (fun doc ->
      let s = Xmlcore.Printer.doc_to_string doc in
      Tree.equal (Xmlcore.Sax.tree_of_events (Xmlcore.Sax.parse s))
        (Xmlcore.Parser.parse s))

let sax_census_agrees =
  QCheck.Test.make ~name:"SAX census = Stats census" ~count:100
    Helpers.arbitrary_doc
    (fun doc ->
      let s = Xmlcore.Printer.doc_to_string doc in
      Xmlcore.Sax.census s = Xmlcore.Stats.tag_census (Xmlcore.Parser.parse_doc s))

let sax_fuzz_total =
  QCheck.Test.make ~name:"SAX parser is total" ~count:1000 QCheck.string
    (fun s ->
      match Xmlcore.Sax.parse s (fun _ -> ()) with
      | () -> true
      | exception Xmlcore.Sax.Parse_error _ -> true)

let sax_channel () =
  (* Channel parsing with a tiny chunk size stresses the window. *)
  let doc = Workload.Health.generate ~patients:30 () in
  let s = Xmlcore.Printer.doc_to_string doc in
  let path = Filename.temp_file "sax" ".xml" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out_bin path in
      output_string oc s;
      close_out oc;
      let ic = open_in_bin path in
      let tree =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () ->
            Xmlcore.Sax.tree_of_events (Xmlcore.Sax.parse_channel ~chunk_bytes:97 ic))
      in
      Alcotest.(check bool) "channel = string parse" true
        (Tree.equal tree (Xmlcore.Parser.parse s)))

let sax_events_shape () =
  let events = ref [] in
  Xmlcore.Sax.parse {|<a k="v"><b>hi</b><c/></a>|} (fun e -> events := e :: !events);
  (match List.rev !events with
   | [ Xmlcore.Sax.Start_element "a"; Attribute ("k", "v"); Start_element "b";
       Text "hi"; End_element "b"; Start_element "c"; End_element "c";
       End_element "a" ] -> ()
   | _ -> Alcotest.fail "unexpected event sequence")

(* --- Stats ------------------------------------------------------- *)

let stats_histogram () =
  let doc = Doc.of_tree (sample ()) in
  let h = Xmlcore.Stats.value_histogram doc ~tag:"disease" in
  Alcotest.(check int) "diarrhea count" 2 (List.assoc "diarrhea" h);
  Alcotest.(check int) "leukemia count" 1 (List.assoc "leukemia" h);
  Alcotest.(check int) "total" 4 (Xmlcore.Stats.total_count h);
  Alcotest.(check int) "distinct" 3 (Xmlcore.Stats.distinct_count h)

let stats_census () =
  let doc = Doc.of_tree (sample ()) in
  let census = Xmlcore.Stats.tag_census doc in
  Alcotest.(check int) "patients" 2 (List.assoc "patient" census);
  Alcotest.(check int) "insurance" 3 (List.assoc "insurance" census);
  Alcotest.(check int) "policy#" 4 (List.assoc "policy#" census)

let stats_flatness () =
  Alcotest.(check (float 1e-9)) "flat" 1.0
    (Xmlcore.Stats.flatness [ "a", 3; "b", 3 ]);
  Alcotest.(check (float 1e-9)) "skewed" 0.1
    (Xmlcore.Stats.flatness [ "a", 1; "b", 10 ]);
  Alcotest.(check (float 1e-9)) "empty" 1.0 (Xmlcore.Stats.flatness [])

let stats_totals_prop =
  QCheck.Test.make ~name:"histogram totals = node counts" ~count:100
    Helpers.arbitrary_doc
    (fun doc ->
      List.for_all
        (fun (tag, h) ->
          Xmlcore.Stats.total_count h
          = List.length
              (List.filter
                 (fun n -> Doc.value doc n <> None)
                 (Doc.nodes_with_tag doc tag)))
        (Xmlcore.Stats.all_histograms doc))

let () =
  Alcotest.run "xmlcore"
    [ ("tree", [ Alcotest.test_case "basics" `Quick tree_basics ]);
      ( "doc",
        [ Alcotest.test_case "indexing" `Quick doc_indexing;
          Alcotest.test_case "rejects mixed content" `Quick doc_rejects_mixed ]
        @ List.map QCheck_alcotest.to_alcotest
            [ doc_roundtrip_prop; doc_parent_child_inverse; doc_subtree_sizes ] );
      ( "parser",
        [ Alcotest.test_case "basics" `Quick parser_basics;
          Alcotest.test_case "entities" `Quick parser_entities;
          Alcotest.test_case "cdata & prolog" `Quick parser_cdata_comments;
          Alcotest.test_case "whitespace" `Quick parser_whitespace;
          Alcotest.test_case "errors" `Quick parser_errors ]
        @ List.map QCheck_alcotest.to_alcotest
            [ parser_fuzz_total; parser_fuzz_mutations ] );
      ( "printer",
        Alcotest.test_case "escaping" `Quick printer_escaping
        :: List.map QCheck_alcotest.to_alcotest
             [ roundtrip_prop; roundtrip_indented_prop; serialized_size_agrees ] );
      ( "sax",
        [ Alcotest.test_case "event shape" `Quick sax_events_shape;
          Alcotest.test_case "channel input" `Quick sax_channel ]
        @ List.map QCheck_alcotest.to_alcotest
            [ sax_agrees_with_dom; sax_census_agrees; sax_fuzz_total ] );
      ( "stats",
        [ Alcotest.test_case "histogram" `Quick stats_histogram;
          Alcotest.test_case "census" `Quick stats_census;
          Alcotest.test_case "flatness" `Quick stats_flatness ]
        @ List.map QCheck_alcotest.to_alcotest [ stats_totals_prop ] ) ]
