(* FLWOR layer tests: parser, reference evaluation, secure evaluation
   equivalence across schemes. *)

module Ast = Xquery.Ast
module System = Secure.System

let parse = Xquery.Parser.parse

let doc () = Workload.Health.doc ()

let render trees = List.map Xmlcore.Printer.tree_to_string trees

(* --- Parser -------------------------------------------------------- *)

let parser_shapes () =
  let q =
    parse
      "for $p in //patient let $t := .//treat where $p/age >= 40 and \
       .//disease = 'flu' order by $p/age descending return \
       <row>{$p/pname}{$t/doctor}</row>"
  in
  Alcotest.(check string) "for var" "p" q.Ast.for_var;
  Alcotest.(check int) "one let" 1 (List.length q.Ast.lets);
  Alcotest.(check int) "two conditions" 2 (List.length q.Ast.where);
  Alcotest.(check bool) "ordered desc" true
    (match q.Ast.order_by with Some { Ast.descending; _ } -> descending | None -> false);
  (match q.Ast.return with
   | Ast.Elem ("row", [ Ast.Splice _; Ast.Splice _ ]) -> ()
   | _ -> Alcotest.fail "template shape");
  (* Condition subjects. *)
  (match q.Ast.where with
   | [ c1; c2 ] ->
     Alcotest.(check (option string)) "explicit var" (Some "p") c1.Ast.subject;
     Alcotest.(check (option string)) "implicit for var" None c2.Ast.subject
   | _ -> Alcotest.fail "conditions")

let parser_minimal () =
  let q = parse "for $x in //disease return {$x}" in
  Alcotest.(check int) "no lets" 0 (List.length q.Ast.lets);
  Alcotest.(check int) "no conditions" 0 (List.length q.Ast.where);
  (match q.Ast.return with
   | Ast.Splice { Ast.var = "x"; steps = None } -> ()
   | _ -> Alcotest.fail "bare splice")

let parser_errors () =
  let fails s =
    match parse s with
    | _ -> Alcotest.failf "%S should not parse" s
    | exception Xquery.Parser.Parse_error _ -> ()
  in
  fails "for x in //a return {$x}";
  fails "for $x in //a";
  fails "for $x in //a return <r>{$x}</s>";
  fails "for $x in //a where b ~ 3 return {$x}";
  fails "for $x in //a return {$x} trailing"

let to_string_roundtrip () =
  List.iter
    (fun s ->
      let q = parse s in
      let q2 = parse (Ast.to_string q) in
      Alcotest.(check string) s (Ast.to_string q) (Ast.to_string q2))
    [ "for $p in //patient return <r>{$p/pname}</r>";
      "for $p in //patient where $p/age >= 40 return {$p}";
      "for $p in //patient let $t := .//treat order by $p/age return \
       <row>{$t/disease}</row>" ]

(* --- Reference evaluation ------------------------------------------ *)

let eval_basic () =
  let d = doc () in
  let results =
    Xquery.Eval.eval d (parse "for $p in //patient return <name>{$p/pname}</name>")
  in
  Alcotest.(check (list string)) "wrapped names"
    [ "<name><pname>Betty</pname></name>"; "<name><pname>Matt</pname></name>" ]
    (render results)

let eval_where () =
  let d = doc () in
  let results =
    Xquery.Eval.eval d
      (parse
         "for $p in //patient where .//disease = 'leukemia' return {$p/pname}")
  in
  Alcotest.(check (list string)) "filtered" [ "<pname>Matt</pname>" ] (render results);
  let empty =
    Xquery.Eval.eval d
      (parse "for $p in //patient where $p/age > 99 return {$p/pname}")
  in
  Alcotest.(check int) "no matches" 0 (List.length empty)

let eval_let_and_conditions_on_lets () =
  let d = doc () in
  let results =
    Xquery.Eval.eval d
      (parse
         "for $p in //patient let $i := .//insurance where $i/@coverage >= \
          '500000' return {$p/pname}")
  in
  Alcotest.(check (list string)) "let condition" [ "<pname>Betty</pname>" ]
    (render results)

let eval_order_by () =
  let d = doc () in
  let ascending =
    Xquery.Eval.eval d
      (parse "for $p in //patient order by $p/age return {$p/age}")
  in
  Alcotest.(check (list string)) "ascending" [ "<age>35</age>"; "<age>40</age>" ]
    (render ascending);
  let descending =
    Xquery.Eval.eval d
      (parse "for $p in //patient order by $p/age descending return {$p/age}")
  in
  Alcotest.(check (list string)) "descending" [ "<age>40</age>"; "<age>35</age>" ]
    (render descending)

let eval_nested_template () =
  let d = doc () in
  let results =
    Xquery.Eval.eval d
      (parse
         "for $t in //treat where $t/doctor = 'Smith' return \
          <case><who>{$t/disease}</who><label>smith-case</label></case>")
  in
  Alcotest.(check int) "two smith cases" 2 (List.length results);
  List.iter
    (fun s ->
      Alcotest.(check bool) "label present" true
        (let needle = "<label>smith-case</label>" in
         let rec has i =
           i + String.length needle <= String.length s
           && (String.sub s i (String.length needle) = needle || has (i + 1))
         in
         has 0))
    (render results)

let pushdown_shape () =
  let q =
    parse
      "for $p in //patient let $i := .//insurance where $p/age >= 40 and \
       $i/@coverage >= '10000' return {$p/pname}"
  in
  let pushed = Xquery.Eval.pushdown q in
  (* Only the for-var condition is pushed; the let condition stays. *)
  Alcotest.(check string) "pushdown" "//patient[age>=40]"
    (Xpath.Ast.to_string pushed)

(* --- Secure evaluation across schemes ------------------------------ *)

let flwor_queries =
  [ "for $p in //patient return <name>{$p/pname}</name>";
    "for $p in //patient where .//disease = 'diarrhea' return {$p/SSN}";
    "for $p in //patient where $p/age >= 40 return <r>{$p/pname}{$p/age}</r>";
    "for $t in //treat where $t/doctor != 'Smith' return {$t/disease}";
    "for $p in //patient let $i := .//insurance where $i/@coverage >= '500000' \
     return {$p/pname}";
    "for $p in //patient order by $p/age descending return {$p/pname}";
    "for $x in //insurance return <pol>{$x/policy#}</pol>" ]

let secure_equals_reference () =
  let d = doc () in
  let scs = Workload.Health.constraints () in
  List.iter
    (fun kind ->
      let sys, _ = System.setup d scs kind in
      List.iter
        (fun qs ->
          let q = parse qs in
          let expected = Xquery.Secure_run.reference sys q in
          let got, _cost = Xquery.Secure_run.evaluate sys q in
          Alcotest.(check (list string))
            (Printf.sprintf "%s: %s" (Secure.Scheme.kind_to_string kind) qs)
            (render expected) (render got))
        flwor_queries)
    Secure.Scheme.all_kinds

let secure_on_generated () =
  let d = Workload.Health.generate ~patients:60 () in
  let scs = Workload.Health.constraints () in
  let sys, _ = System.setup d scs Secure.Scheme.Opt in
  List.iter
    (fun qs ->
      let q = parse qs in
      Alcotest.(check (list string)) qs
        (render (Xquery.Secure_run.reference sys q))
        (render (fst (Xquery.Secure_run.evaluate sys q))))
    [ "for $p in //patient where $p/age >= 90 order by $p/age return \
       <senior>{$p/pname}{$p/age}</senior>";
      "for $t in //treat where $t/disease = 'flu' return {$t/doctor}" ]

let () =
  Alcotest.run "xquery"
    [ ( "parser",
        [ Alcotest.test_case "shapes" `Quick parser_shapes;
          Alcotest.test_case "minimal" `Quick parser_minimal;
          Alcotest.test_case "errors" `Quick parser_errors;
          Alcotest.test_case "to_string roundtrip" `Quick to_string_roundtrip ] );
      ( "eval",
        [ Alcotest.test_case "basic" `Quick eval_basic;
          Alcotest.test_case "where" `Quick eval_where;
          Alcotest.test_case "lets" `Quick eval_let_and_conditions_on_lets;
          Alcotest.test_case "order by" `Quick eval_order_by;
          Alcotest.test_case "nested template" `Quick eval_nested_template;
          Alcotest.test_case "pushdown" `Quick pushdown_shape ] );
      ( "secure",
        [ Alcotest.test_case "all schemes" `Quick secure_equals_reference;
          Alcotest.test_case "generated hospital" `Slow secure_on_generated ] ) ]
