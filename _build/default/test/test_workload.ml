(* Workload generator tests: distributions, document generators,
   query generators. *)

module Doc = Xmlcore.Doc

let distribution_sampling () =
  let rng = Crypto.Prng.create 1L in
  let d = Workload.Distribution.zipf [| "a"; "b"; "c"; "d" |] in
  let counts = Hashtbl.create 4 in
  for _ = 1 to 10_000 do
    let v = Workload.Distribution.sample d rng in
    Hashtbl.replace counts v (1 + Option.value ~default:0 (Hashtbl.find_opt counts v))
  done;
  let count v = Option.value ~default:0 (Hashtbl.find_opt counts v) in
  (* Zipf(1): P(a) = 1/H4, P(b) = 1/2H4 ... strictly decreasing. *)
  Alcotest.(check bool) "skew ordering" true (count "a" > count "b" && count "b" > count "c");
  Alcotest.(check int) "all samples accounted" 10_000
    (count "a" + count "b" + count "c" + count "d")

let distribution_uniform () =
  let rng = Crypto.Prng.create 2L in
  let d = Workload.Distribution.uniform [| "x"; "y" |] in
  let hits = ref 0 in
  for _ = 1 to 2_000 do
    if Workload.Distribution.sample d rng = "x" then incr hits
  done;
  Alcotest.(check bool) "roughly balanced" true (!hits > 800 && !hits < 1200)

let distribution_guards () =
  Alcotest.check_raises "empty support"
    (Invalid_argument "Distribution.uniform: empty support")
    (fun () -> ignore (Workload.Distribution.uniform [||]));
  Alcotest.check_raises "bad weights"
    (Invalid_argument "Distribution: weights must sum to a positive value")
    (fun () -> ignore (Workload.Distribution.weighted [ "a", 0.0 ]))

let health_figure2 () =
  let doc = Workload.Health.doc () in
  Alcotest.(check int) "patients" 2 (List.length (Doc.nodes_with_tag doc "patient"));
  Alcotest.(check int) "insurances" 3 (List.length (Doc.nodes_with_tag doc "insurance"));
  Alcotest.(check int) "constraints" 4 (List.length (Workload.Health.constraints ()))

let generators_deterministic () =
  let a = Workload.Xmark.generate ~seed:5L ~persons:50 () in
  let b = Workload.Xmark.generate ~seed:5L ~persons:50 () in
  Alcotest.(check bool) "same seed, same doc" true
    (Xmlcore.Tree.equal (Doc.to_tree a) (Doc.to_tree b));
  let c = Workload.Xmark.generate ~seed:6L ~persons:50 () in
  Alcotest.(check bool) "different seed, different doc" false
    (Xmlcore.Tree.equal (Doc.to_tree a) (Doc.to_tree c))

let generators_scale () =
  let small = Workload.Nasa.generate ~datasets:10 () in
  let large = Workload.Nasa.generate ~datasets:100 () in
  Alcotest.(check bool) "scales with parameter" true
    (Doc.node_count large > 5 * Doc.node_count small);
  let bytes = String.length (Xmlcore.Printer.doc_to_string large) in
  let predicted = Workload.Nasa.datasets_for_bytes bytes in
  Alcotest.(check bool) "size predictor within 2x" true
    (predicted > 40 && predicted < 250)

let generators_satisfiable_constraints () =
  (* The shipped SC sets must be enforceable on their own documents. *)
  let check doc scs =
    List.iter
      (fun kind ->
        let scheme = Secure.Scheme.build doc scs kind in
        match Secure.Scheme.enforces doc scheme scs with
        | Ok () -> ()
        | Error e ->
          Alcotest.failf "%s: %s" (Secure.Scheme.kind_to_string kind) e)
      Secure.Scheme.all_kinds
  in
  check (Workload.Xmark.generate ~persons:40 ()) (Workload.Xmark.constraints ());
  check (Workload.Nasa.generate ~datasets:40 ()) (Workload.Nasa.constraints ());
  check (Workload.Health.generate ~patients:40 ()) (Workload.Health.constraints ());
  check (Workload.Dblp.generate ~papers:40 ()) (Workload.Dblp.constraints ())

let dblp_protocol_correctness () =
  let doc = Workload.Dblp.generate ~papers:45 () in
  Alcotest.(check bool) "deep hierarchy" true (Doc.height doc >= 4);
  let scs = Workload.Dblp.constraints () in
  List.iter
    (fun kind ->
      let sys, _ = Secure.System.setup doc scs kind in
      List.iter
        (fun fam ->
          List.iter
            (fun q ->
              let expected =
                List.sort compare
                  (List.map Xmlcore.Printer.tree_to_string
                     (Secure.System.reference sys q))
              in
              let got, _ = Secure.System.evaluate sys q in
              Alcotest.(check (list string))
                (Printf.sprintf "%s/%s %s" (Secure.Scheme.kind_to_string kind)
                   (Workload.Querygen.family_to_string fam)
                   (Xpath.Ast.to_string q))
                expected
                (List.sort compare (List.map Xmlcore.Printer.tree_to_string got)))
            (Workload.Querygen.generate doc fam ~count:4))
        Workload.Querygen.all_families)
    [ Secure.Scheme.Opt; Secure.Scheme.Sub ]

let querygen_families () =
  let doc = Workload.Nasa.generate ~datasets:60 () in
  List.iter
    (fun fam ->
      let queries = Workload.Querygen.generate doc fam ~count:6 in
      Alcotest.(check bool)
        (Workload.Querygen.family_to_string fam ^ " produces queries")
        true
        (List.length queries > 0);
      (* All generated queries are non-empty on the document. *)
      List.iter
        (fun q ->
          Alcotest.(check bool)
            (Xpath.Ast.to_string q ^ " non-empty")
            true (Xpath.Eval.matches doc q))
        queries;
      (* Distinct. *)
      let strings = List.map Xpath.Ast.to_string queries in
      Alcotest.(check int) "distinct" (List.length strings)
        (List.length (List.sort_uniq String.compare strings)))
    Workload.Querygen.all_families

let querygen_depth_targets () =
  let doc = Workload.Nasa.generate ~datasets:60 () in
  (* Qs outputs children of the root. *)
  List.iter
    (fun q ->
      List.iter
        (fun n -> Alcotest.(check int) "depth 1" 1 (Doc.depth_of doc n))
        (Xpath.Eval.eval doc q))
    (Workload.Querygen.generate doc Workload.Querygen.Qs ~count:3);
  (* Ql outputs leaves. *)
  List.iter
    (fun q ->
      List.iter
        (fun n -> Alcotest.(check bool) "leaf" true (Doc.is_leaf doc n))
        (Xpath.Eval.eval doc q))
    (Workload.Querygen.generate doc Workload.Querygen.Ql ~count:3)

let () =
  Alcotest.run "workload"
    [ ( "distribution",
        [ Alcotest.test_case "zipf sampling" `Quick distribution_sampling;
          Alcotest.test_case "uniform" `Quick distribution_uniform;
          Alcotest.test_case "guards" `Quick distribution_guards ] );
      ( "generators",
        [ Alcotest.test_case "figure 2" `Quick health_figure2;
          Alcotest.test_case "deterministic" `Quick generators_deterministic;
          Alcotest.test_case "scaling" `Quick generators_scale;
          Alcotest.test_case "constraints enforceable" `Slow generators_satisfiable_constraints;
          Alcotest.test_case "dblp protocol correctness" `Slow dblp_protocol_correctness ] );
      ( "querygen",
        [ Alcotest.test_case "families" `Quick querygen_families;
          Alcotest.test_case "depth targets" `Quick querygen_depth_targets ] ) ]
