(* Composite (skeleton + decrypted blocks) navigation tests — the
   client-side evaluation substrate, exercised directly at the edges
   where navigation crosses a block boundary. *)

module Doc = Xmlcore.Doc
module Tree = Xmlcore.Tree
module Composite = Secure.Composite
module Nav = Composite.Navigation

(* Fixture: hospital doc with the two pname leaves and one treat
   subtree encrypted; build the composite with all blocks returned,
   some returned, none returned. *)
let fixture ~return_blocks =
  let doc = Workload.Health.doc () in
  let keys = Crypto.Keys.create ~master:"composite-test" () in
  let roots =
    List.concat
      [ Doc.nodes_with_tag doc "pname";
        [ List.hd (Doc.nodes_with_tag doc "treat") ] ]
  in
  let scheme =
    { Secure.Scheme.kind = Secure.Scheme.Opt;
      block_roots = List.sort compare roots;
      covered_tags = [] }
  in
  let db = Secure.Encrypt.encrypt ~keys doc scheme in
  let skeleton_doc = Doc.of_tree db.Secure.Encrypt.skeleton in
  let anchors =
    Doc.fold skeleton_doc
      (fun acc n ->
        match Secure.Encrypt.placeholder_id (Doc.tag skeleton_doc n) with
        | Some id -> (id, n) :: acc
        | None -> acc)
      []
  in
  let decrypted =
    List.filter_map
      (fun b ->
        if return_blocks b.Secure.Encrypt.id then
          Some (b.Secure.Encrypt.id, Doc.of_tree (Secure.Encrypt.decrypt_block ~keys b))
        else None)
      db.Secure.Encrypt.blocks
  in
  doc, Composite.create ~skeleton:skeleton_doc ~anchors ~blocks:decrypted

let tags view nodes = List.map (Nav.tag view) nodes

let all_returned () =
  let doc, view = fixture ~return_blocks:(fun _ -> true) in
  (* The composite sees exactly the original document. *)
  let all = Nav.all_nodes view in
  Alcotest.(check int) "node count matches original" (Doc.node_count doc)
    (List.length all);
  let originals =
    List.sort compare (List.map (fun n -> Doc.tag doc n) (Doc.descendant_or_self doc 0))
  in
  Alcotest.(check (list string)) "same multiset of tags" originals
    (List.sort compare (tags view all))

let none_returned () =
  let doc, view = fixture ~return_blocks:(fun _ -> false) in
  (* Unreturned blocks vanish: no pname, one fewer treat. *)
  let all = Nav.all_nodes view in
  let count tag = List.length (List.filter (fun n -> Nav.tag view n = tag) all) in
  Alcotest.(check int) "pnames pruned" 0 (count "pname");
  Alcotest.(check int) "one treat pruned" 3 (count "treat");
  Alcotest.(check int) "patients intact" 2 (count "patient");
  ignore doc

let parent_across_boundary () =
  let _, view = fixture ~return_blocks:(fun _ -> true) in
  (* A pname node lives inside a block; its parent is the patient in
     the skeleton. *)
  let pname =
    List.find (fun n -> Nav.tag view n = "pname") (Nav.all_nodes view)
  in
  (match Nav.parent view pname with
   | Some p -> Alcotest.(check string) "parent is patient" "patient" (Nav.tag view p)
   | None -> Alcotest.fail "pname should have a parent");
  (* Root has none. *)
  Alcotest.(check bool) "root parentless" true
    (Nav.parent view (Nav.root view) = None);
  (* Inside a multi-node block, parent stays within the block. *)
  let disease =
    List.find (fun n -> Nav.tag view n = "disease") (Nav.all_nodes view)
  in
  (match Nav.parent view disease with
   | Some p -> Alcotest.(check string) "parent within block" "treat" (Nav.tag view p)
   | None -> Alcotest.fail "disease should have a parent")

let siblings_across_boundary () =
  let _, view = fixture ~return_blocks:(fun _ -> true) in
  (* pname (block root) is followed by SSN (plaintext skeleton node). *)
  let pname =
    List.find (fun n -> Nav.tag view n = "pname") (Nav.all_nodes view)
  in
  (match Nav.following_siblings view pname with
   | first :: _ -> Alcotest.(check string) "SSN follows pname" "SSN" (Nav.tag view first)
   | [] -> Alcotest.fail "pname should have following siblings");
  (* An encrypted treat is followed by its plaintext sibling treat. *)
  let first_treat =
    List.find (fun n -> Nav.tag view n = "treat") (Nav.all_nodes view)
  in
  (match Nav.following_siblings view first_treat with
   | first :: _ -> Alcotest.(check string) "treat follows treat" "treat" (Nav.tag view first)
   | [] -> Alcotest.fail "first treat should have following siblings")

let unreturned_sibling_invisible () =
  let _, view = fixture ~return_blocks:(fun _ -> false) in
  (* With pname blocks pruned, each patient's first child is SSN. *)
  let patients =
    List.filter (fun n -> Nav.tag view n = "patient") (Nav.all_nodes view)
  in
  List.iter
    (fun p ->
      match Nav.children view p with
      | first :: _ -> Alcotest.(check string) "first child now SSN" "SSN" (Nav.tag view first)
      | [] -> Alcotest.fail "patient should have children")
    patients

let subtree_materialisation () =
  let doc, view = fixture ~return_blocks:(fun _ -> true) in
  (* Materialising the composite root reproduces the original tree. *)
  Alcotest.(check bool) "subtree = original document" true
    (Tree.equal (Composite.subtree view (Nav.root view)) (Doc.to_tree doc))

let document_order () =
  let _, view = fixture ~return_blocks:(fun _ -> true) in
  let all = Nav.all_nodes view in
  let sorted = List.sort Nav.compare_node all in
  Alcotest.(check (list string)) "all_nodes already in document order"
    (tags view all) (tags view sorted)

(* Property: evaluating over a composite with an arbitrary subset of
   blocks returned equals evaluating over the document with the
   unreturned blocks' subtrees deleted. *)
let pruning_matches_reference =
  QCheck.Test.make ~name:"partial composite = pruned document" ~count:60
    QCheck.(pair Helpers.arbitrary_doc (int_bound 1023))
    (fun (doc, mask) ->
      let keys = Crypto.Keys.create ~master:"composite-prop" () in
      (* Encrypt every 'b' and 'name' node that is not nested in
         another chosen root. *)
      let roots =
        List.filter
          (fun n ->
            let tag = Xmlcore.Doc.tag doc n in
            String.equal tag "b" || String.equal tag "name")
          (Xmlcore.Doc.descendant_or_self doc 0)
      in
      let rec drop_nested = function
        | [] -> []
        | r :: rest ->
          r :: drop_nested
                 (List.filter (fun r' -> not (Xmlcore.Doc.is_ancestor doc r r')) rest)
      in
      let roots = drop_nested (List.sort compare roots) in
      roots = []
      ||
      let scheme =
        { Secure.Scheme.kind = Secure.Scheme.Opt; block_roots = roots; covered_tags = [] }
      in
      let db = Secure.Encrypt.encrypt ~keys doc scheme in
      let skeleton_doc = Doc.of_tree db.Secure.Encrypt.skeleton in
      let anchors =
        Doc.fold skeleton_doc
          (fun acc n ->
            match Secure.Encrypt.placeholder_id (Doc.tag skeleton_doc n) with
            | Some id -> (id, n) :: acc
            | None -> acc)
          []
      in
      let returned b = mask land (1 lsl (b.Secure.Encrypt.id mod 10)) <> 0 in
      let decrypted =
        List.filter_map
          (fun b ->
            if returned b then
              Some
                ( b.Secure.Encrypt.id,
                  Doc.of_tree (Secure.Encrypt.decrypt_block ~keys b) )
            else None)
          db.Secure.Encrypt.blocks
      in
      let view = Composite.create ~skeleton:skeleton_doc ~anchors ~blocks:decrypted in
      (* Reference: delete unreturned roots from the plaintext doc. *)
      let removed =
        List.filter_map
          (fun b -> if returned b then None else Some b.Secure.Encrypt.root)
          db.Secure.Encrypt.blocks
      in
      let rec prune n =
        if List.mem n removed then None
        else
          match Doc.value doc n with
          | Some v -> Some (Tree.leaf (Doc.tag doc n) v)
          | None ->
            Some
              (Tree.element (Doc.tag doc n)
                 (List.filter_map prune (Doc.children doc n)))
      in
      match prune (Doc.root doc) with
      | None -> true
      | Some pruned_tree ->
        let reference = Doc.of_tree pruned_tree in
        List.for_all
          (fun q ->
            let query = Xpath.Parser.parse q in
            let via_composite =
              List.map (Composite.subtree view) (Composite.Eval.eval view query)
            in
            let via_reference =
              List.map (Doc.subtree reference) (Xpath.Eval.eval reference query)
            in
            Helpers.norm_trees via_composite = Helpers.norm_trees via_reference)
          [ "//a"; "//b"; "//name"; "//item[price>=20]"; "//a//b"; "//b/.." ])

let () =
  Alcotest.run "composite"
    [ ( "navigation",
        [ Alcotest.test_case "all blocks returned" `Quick all_returned;
          Alcotest.test_case "no blocks returned" `Quick none_returned;
          Alcotest.test_case "parent across boundary" `Quick parent_across_boundary;
          Alcotest.test_case "siblings across boundary" `Quick siblings_across_boundary;
          Alcotest.test_case "unreturned siblings invisible" `Quick
            unreturned_sibling_invisible;
          Alcotest.test_case "subtree materialisation" `Quick subtree_materialisation;
          Alcotest.test_case "document order" `Quick document_order ]
        @ List.map QCheck_alcotest.to_alcotest [ pruning_matches_reference ] ) ]
