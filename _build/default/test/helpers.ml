(* Shared test utilities: random document generation and qcheck
   wrappers used across the suite. *)

module Tree = Xmlcore.Tree

let tags = [| "a"; "b"; "c"; "d"; "item"; "name"; "price" |]
let values = [| "x"; "y"; "z"; "10"; "20"; "30"; "hello" |]

(* Random tree with no mixed content, matching the system's data
   model.  [size] caps the node count loosely. *)
let rec random_tree rng ~depth ~fanout =
  let tag = tags.(Crypto.Prng.int rng (Array.length tags)) in
  if depth = 0 || Crypto.Prng.int rng 100 < 35 then
    Tree.leaf tag values.(Crypto.Prng.int rng (Array.length values))
  else
    let n = 1 + Crypto.Prng.int rng fanout in
    Tree.element tag
      (List.init n (fun _ -> random_tree rng ~depth:(depth - 1) ~fanout))

let random_doc ?(seed = 99L) ?(depth = 4) ?(fanout = 4) () =
  let rng = Crypto.Prng.create seed in
  (* Force the root to be an element. *)
  let children =
    List.init (1 + Crypto.Prng.int rng fanout) (fun _ ->
        random_tree rng ~depth ~fanout)
  in
  Xmlcore.Doc.of_tree (Tree.element "root" children)

let doc_gen =
  QCheck.Gen.map (fun seed -> random_doc ~seed:(Int64.of_int seed) ())
    (QCheck.Gen.int_range 1 1_000_000)

let arbitrary_doc =
  QCheck.make ~print:(fun d -> Xmlcore.Printer.doc_to_string d) doc_gen

let qsuite name tests = name, List.map QCheck_alcotest.to_alcotest tests

let norm_trees trees =
  List.sort compare (List.map Xmlcore.Printer.tree_to_string trees)

let check_trees_equal msg expected got =
  Alcotest.(check (list string)) msg (norm_trees expected) (norm_trees got)
