(* DSI index tests: interval algebra, calInterval assignment, joins. *)

module Interval = Dsi.Interval
module Doc = Xmlcore.Doc

let iv lo hi = Interval.make lo hi

(* --- Interval ---------------------------------------------------- *)

let interval_basics () =
  Alcotest.(check bool) "contains" true (Interval.contains (iv 0.0 1.0) (iv 0.2 0.8));
  Alcotest.(check bool) "strict" false (Interval.contains (iv 0.0 1.0) (iv 0.0 0.8));
  Alcotest.(check bool) "disjoint" true (Interval.disjoint (iv 0.0 0.4) (iv 0.5 0.9));
  Alcotest.(check bool) "overlap not disjoint" false
    (Interval.disjoint (iv 0.0 0.6) (iv 0.5 0.9));
  Alcotest.(check bool) "hull" true
    (Interval.equal (Interval.hull (iv 0.1 0.3) (iv 0.5 0.7)) (iv 0.1 0.7));
  Alcotest.check_raises "degenerate" (Invalid_argument "Interval.make: lo must be < hi")
    (fun () -> ignore (Interval.make 0.5 0.5))

(* --- Assignment --------------------------------------------------- *)

let assignment_valid_prop =
  QCheck.Test.make ~name:"calInterval invariants on random docs" ~count:100
    Helpers.arbitrary_doc
    (fun doc ->
      let a = Dsi.Assign.assign ~key:"test-key" doc in
      Dsi.Assign.validate a = Ok ())

let assignment_containment_matches_ancestry =
  QCheck.Test.make ~name:"interval containment = tree ancestry" ~count:50
    Helpers.arbitrary_doc
    (fun doc ->
      let a = Dsi.Assign.assign ~key:"k" doc in
      let n = Doc.node_count doc in
      let ok = ref true in
      for x = 0 to min (n - 1) 40 do
        for y = 0 to min (n - 1) 40 do
          if x <> y then begin
            let c =
              Interval.contains (Dsi.Assign.interval a x) (Dsi.Assign.interval a y)
            in
            if c <> Doc.is_ancestor doc x y then ok := false
          end
        done
      done;
      !ok)

let assignment_key_dependent () =
  let doc = Workload.Health.doc () in
  let a1 = Dsi.Assign.assign ~key:"k1" doc in
  let a2 = Dsi.Assign.assign ~key:"k2" doc in
  let differs = ref false in
  Doc.iter doc (fun n ->
      if not (Interval.equal (Dsi.Assign.interval a1 n) (Dsi.Assign.interval a2 n))
      then differs := true);
  Alcotest.(check bool) "weights are keyed" true !differs;
  (* The root is always [0,1] though. *)
  Alcotest.(check bool) "root fixed" true
    (Interval.equal (Dsi.Assign.interval a1 0) (iv 0.0 1.0))

let assignment_figure3_bounds () =
  (* Spot-check the calInterval slot arithmetic: child i of a node with
     N children lies within slot [(2i-1)d - 0.5d, 2id + 0.5d]. *)
  let doc = Workload.Health.doc () in
  let a = Dsi.Assign.assign ~key:"k" doc in
  Doc.iter doc (fun p ->
      let children = Doc.children doc p in
      let count = List.length children in
      if count > 0 then begin
        let pi = Dsi.Assign.interval a p in
        let d = Interval.width pi /. float_of_int ((2 * count) + 1) in
        List.iteri
          (fun idx c ->
            let i = float_of_int (idx + 1) in
            let ci = Dsi.Assign.interval a c in
            let lo_min = pi.Interval.lo +. ((2.0 *. i -. 1.0) *. d) -. (0.5 *. d) in
            let hi_max = pi.Interval.lo +. (2.0 *. i *. d) +. (0.5 *. d) in
            if not (ci.Interval.lo > lo_min && ci.Interval.hi < hi_max) then
              Alcotest.failf "child %d of %d outside its slot" c p)
          children
      end)

(* --- Joins -------------------------------------------------------- *)

let doc_join_setup () =
  let doc = Workload.Health.doc () in
  let a = Dsi.Assign.assign ~key:"jk" doc in
  let of_nodes ns = List.map (Dsi.Assign.interval a) ns in
  let universe =
    Dsi.Join.prepare_universe (of_nodes (List.init (Doc.node_count doc) (fun i -> i)))
  in
  doc, a, of_nodes, universe

let join_descendants () =
  let doc, a, of_nodes, _ = doc_join_setup () in
  let patients = of_nodes (Doc.nodes_with_tag doc "patient") in
  let diseases = of_nodes (Doc.nodes_with_tag doc "disease") in
  Alcotest.(check int) "diseases under patients" 4
    (List.length (Dsi.Join.descendants_within ~ancestors:patients diseases));
  Alcotest.(check int) "patients with diseases" 2
    (List.length (Dsi.Join.ancestors_of_some ~descendants:diseases patients));
  let root = [ Dsi.Assign.interval a 0 ] in
  Alcotest.(check int) "nothing above the root" 0
    (List.length (Dsi.Join.descendants_within ~ancestors:diseases root))

let join_children () =
  let doc, _, of_nodes, universe = doc_join_setup () in
  let patients = of_nodes (Doc.nodes_with_tag doc "patient") in
  let diseases = of_nodes (Doc.nodes_with_tag doc "disease") in
  let treats = of_nodes (Doc.nodes_with_tag doc "treat") in
  Alcotest.(check int) "disease is child of treat" 4
    (List.length (Dsi.Join.children_within ~universe ~parents:treats diseases));
  Alcotest.(check int) "disease is not child of patient" 0
    (List.length (Dsi.Join.children_within ~universe ~parents:patients diseases));
  Alcotest.(check int) "treats with disease children" 4
    (List.length (Dsi.Join.parents_of_some ~universe ~children:diseases treats))

let join_matches_tree_prop =
  QCheck.Test.make ~name:"structural joins = tree navigation" ~count:50
    Helpers.arbitrary_doc
    (fun doc ->
      let a = Dsi.Assign.assign ~key:"prop" doc in
      let interval_of n = Dsi.Assign.interval a n in
      let universe =
        Dsi.Join.prepare_universe (List.init (Doc.node_count doc) interval_of)
      in
      let nodes tag = Xmlcore.Doc.nodes_with_tag doc tag in
      List.for_all
        (fun (anc_tag, desc_tag) ->
          let ancs = nodes anc_tag and descs = nodes desc_tag in
          let expected_desc =
            List.filter
              (fun d -> List.exists (fun p -> Doc.is_ancestor doc p d) ancs)
              descs
          in
          let got_desc =
            Dsi.Join.descendants_within
              ~ancestors:(List.map interval_of ancs)
              (List.map interval_of descs)
          in
          let expected_child =
            List.filter
              (fun d -> List.exists (fun p -> Doc.parent doc d = Some p) ancs)
              descs
          in
          let got_child =
            Dsi.Join.children_within ~universe
              ~parents:(List.map interval_of ancs)
              (List.map interval_of descs)
          in
          List.length got_desc = List.length expected_desc
          && List.length got_child = List.length expected_child)
        [ "a", "b"; "b", "a"; "a", "item"; "item", "name"; "c", "d" ])

let join_grouped_hulls () =
  (* Grouped sibling hulls must still join correctly: the hull of two
     adjacent policy# leaves is a child of their insurance parent. *)
  let doc, _a, of_nodes, _universe = doc_join_setup () in
  let insurances = of_nodes (Doc.nodes_with_tag doc "insurance") in
  (* Betty's insurance node has two policy# children. *)
  let betty_insurance =
    List.find
      (fun n -> List.length (Doc.children doc n) = 3 (* @coverage + 2 policy# *))
      (Doc.nodes_with_tag doc "insurance")
  in
  let policies =
    List.filter
      (fun n -> Doc.tag doc n = "policy#")
      (Doc.children doc betty_insurance)
  in
  let hull =
    match of_nodes policies with
    | [ p1; p2 ] -> Interval.hull p1 p2
    | _ -> Alcotest.fail "expected two policies"
  in
  (* The hull is not a node interval, but it must behave as a child of
     insurance in the grouped-universe world. *)
  let all_intervals = of_nodes (List.init (Doc.node_count doc) (fun i -> i)) in
  let grouped_universe =
    Dsi.Join.prepare_universe
      (hull
       :: List.filter
            (fun u -> not (List.exists (Interval.equal u) (of_nodes policies)))
            all_intervals)
  in
  Alcotest.(check int) "hull is child of insurance" 1
    (List.length
       (Dsi.Join.children_within ~universe:grouped_universe ~parents:insurances
          [ hull ]))

(* --- Continuous baseline (the index DSI replaces) ----------------- *)

let continuous_tiles_exactly () =
  let doc = Workload.Health.doc () in
  let c = Dsi.Continuous.assign doc in
  Doc.iter doc (fun p ->
      match Doc.children doc p with
      | [] -> ()
      | children ->
        let pi = Dsi.Continuous.interval c p in
        let widths =
          List.map (fun ch -> Interval.width (Dsi.Continuous.interval c ch)) children
        in
        (* Equal slots covering the parent exactly. *)
        let total = List.fold_left ( +. ) 0.0 widths in
        Alcotest.(check (float 1e-9)) "tiles parent" (Interval.width pi) total;
        List.iter
          (fun w ->
            Alcotest.(check (float 1e-9)) "equal slots"
              (Interval.width pi /. float_of_int (List.length children))
              w)
          widths)

let continuous_grouping_leaks () =
  let doc = Workload.Health.doc () in
  let c = Dsi.Continuous.assign doc in
  (* Group Betty's two policy# children under their insurance parent:
     with the continuous index the hull is detectably wider. *)
  let insurance =
    List.find
      (fun n -> List.length (Doc.children doc n) = 3)
      (Doc.nodes_with_tag doc "insurance")
  in
  let children = Doc.children doc insurance in
  let policies = List.filter (fun n -> Doc.tag doc n = "policy#") children in
  let others = List.filter (fun n -> Doc.tag doc n <> "policy#") children in
  let hull =
    List.fold_left
      (fun acc n -> Interval.hull acc (Dsi.Continuous.interval c n))
      (Dsi.Continuous.interval c (List.hd policies))
      policies
  in
  let visible = hull :: List.map (Dsi.Continuous.interval c) others in
  let parent = Dsi.Continuous.interval c insurance in
  Alcotest.(check bool) "continuous index leaks the grouping" true
    (Dsi.Continuous.grouping_leak ~parent ~child_intervals:visible);
  (* And the attacker counts the hidden members exactly. *)
  let narrowest = Dsi.Continuous.interval c (List.hd others) in
  Alcotest.(check int) "member count recovered" 2
    (Dsi.Continuous.hull_member_estimate ~narrowest ~hull);
  (* The DSI index shows no such signal: gaps make the tiling test fail
     before any width comparison can bite. *)
  let a = Dsi.Assign.assign ~key:"leak" doc in
  let dsi_hull =
    List.fold_left
      (fun acc n -> Interval.hull acc (Dsi.Assign.interval a n))
      (Dsi.Assign.interval a (List.hd policies))
      policies
  in
  let dsi_visible = dsi_hull :: List.map (Dsi.Assign.interval a) others in
  Alcotest.(check bool) "DSI does not leak" false
    (Dsi.Continuous.grouping_leak ~parent:(Dsi.Assign.interval a insurance)
       ~child_intervals:dsi_visible)

let () =
  Alcotest.run "dsi"
    [ ("interval", [ Alcotest.test_case "algebra" `Quick interval_basics ]);
      ( "assignment",
        [ Alcotest.test_case "key dependent" `Quick assignment_key_dependent;
          Alcotest.test_case "figure 3 slots" `Quick assignment_figure3_bounds ]
        @ List.map QCheck_alcotest.to_alcotest
            [ assignment_valid_prop; assignment_containment_matches_ancestry ] );
      ( "joins",
        [ Alcotest.test_case "descendant semi-joins" `Quick join_descendants;
          Alcotest.test_case "child semi-joins" `Quick join_children;
          Alcotest.test_case "grouped hulls" `Quick join_grouped_hulls ]
        @ List.map QCheck_alcotest.to_alcotest [ join_matches_tree_prop ] );
      ( "continuous baseline",
        [ Alcotest.test_case "exact tiling" `Quick continuous_tiles_exactly;
          Alcotest.test_case "grouping leaks (paper 5.1.1)" `Quick
            continuous_grouping_leaks ] ) ]
