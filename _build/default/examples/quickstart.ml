(* Quickstart: host a small XML database on an untrusted server,
   protect two associations and one subtree, and run queries.

     dune exec examples/quickstart.exe
*)

let () =
  (* 1. The data owner's plaintext database. *)
  let doc =
    Xmlcore.Parser.parse_doc
      {|<store>
          <customer><name>Ada</name><card>4556</card><city>London</city></customer>
          <customer><name>Alan</name><card>4559</card><city>Bletchley</city></customer>
          <customer><name>Grace</name><card>4556</card><city>Arlington</city></customer>
          <audit><entry>internal-only</entry></audit>
        </store>|}
  in

  (* 2. What must stay secret: the audit subtree, and who holds which
        card (the name <-> card association). *)
  let constraints =
    [ Secure.Sc.parse "//audit";
      Secure.Sc.parse "//customer:(/name, /card)" ]
  in

  (* 3. Set up the hosted system with the optimal secure encryption
        scheme.  This builds the scheme (vertex cover over the
        constraint graph), encrypts the blocks, and constructs the
        server metadata (DSI structural index + OPESS value index). *)
  let system, setup = Secure.System.setup doc constraints Secure.Scheme.Opt in
  Printf.printf "scheme: %d blocks, %d nodes encrypted; server stores %d bytes\n"
    setup.Secure.System.block_count setup.Secure.System.scheme_size_nodes
    setup.Secure.System.server_data_bytes;

  (* 4. Query through the protocol: the query is translated to opaque
        tokens and ciphertext ranges, the server prunes with its
        indices, the client decrypts and post-processes. *)
  let run q =
    let query = Xpath.Parser.parse q in
    let answers, cost = Secure.System.evaluate system query in
    Printf.printf "\n  %s\n  -> %d answer(s), %d block(s) shipped, %.2f ms total\n"
      q (List.length answers) cost.Secure.System.blocks_returned
      (Secure.System.total_ms cost);
    List.iter
      (fun t -> Printf.printf "     %s\n" (Xmlcore.Printer.tree_to_string t))
      answers;
    (* The protocol answer always equals the plaintext answer. *)
    assert (
      List.sort compare (List.map Xmlcore.Printer.tree_to_string answers)
      = List.sort compare
          (List.map Xmlcore.Printer.tree_to_string (Secure.System.reference system query)))
  in
  run "//customer[city='London']/name";
  run "//customer[card='4556']/name";
  run "//customer[name='Alan']";
  run "//audit";
  print_endline "\nquickstart done."
