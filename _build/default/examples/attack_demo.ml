(* The Section 3.3 attack model in action: a frequency-equipped
   attacker against (a) a careless deterministic per-leaf encryption
   and (b) this system's OPESS value index; plus the size-based attack
   and the Theorem 6.1 belief trajectory.

     dune exec examples/attack_demo.exe
*)

let () =
  let doc = Workload.Health.generate ~patients:200 () in
  let known = Xmlcore.Stats.value_histogram doc ~tag:"disease" in
  Printf.printf "attacker's prior knowledge: exact frequencies of %d disease values\n"
    (Xmlcore.Stats.distinct_count known);
  List.iter (fun (v, c) -> Printf.printf "  %-14s %d\n" v c) known;

  (* (a) Broken scheme: each leaf deterministically encrypted, no
     decoy.  Ciphertext frequencies mirror plaintext frequencies. *)
  let observed_naive = Secure.Attack.deterministic_leaf_histogram known in
  let broken = Secure.Attack.frequency_attack ~known ~observed:observed_naive in
  Printf.printf
    "\n[broken scheme] deterministic per-leaf encryption: cracked %d/%d values (%.0f%%)\n"
    (List.length broken.Secure.Attack.cracked) broken.Secure.Attack.domain_size
    (100.0 *. broken.Secure.Attack.crack_rate);
  List.iter
    (fun (v, f) -> Printf.printf "  identified %-14s by frequency %d\n" v f)
    broken.Secure.Attack.cracked;

  (* (b) This system: the only value-bearing thing the server sees is
     the OPESS-split-and-scaled B-tree distribution. *)
  let cat =
    Secure.Opess.build ~key:"demo-key" ~attr_id:0 ~tag:"disease" known
  in
  Printf.printf "\n[OPESS] m=%d: ciphertext frequencies before scaling: {%s}\n"
    (Secure.Opess.chunk_parameter cat)
    (String.concat ","
       (List.sort_uniq compare
          (List.map (fun (_, c) -> string_of_int c)
             (Secure.Opess.ciphertext_histogram cat))));
  let secure =
    Secure.Attack.frequency_attack ~known
      ~observed:(Secure.Opess.scaled_histogram cat)
  in
  Printf.printf "[OPESS] frequency attack on the scaled index: cracked %d/%d values\n"
    (List.length secure.Secure.Attack.cracked) secure.Secure.Attack.domain_size;

  (* Size-based attack: candidate databases that differ in encrypted
     size are eliminated — indistinguishability (Definition 3.1)
     requires equal sizes, which decoy-padded blocks of one schema
     produce. *)
  let scs = Workload.Health.constraints () in
  let keys = Crypto.Keys.create ~master:"size-demo" () in
  let scheme = Secure.Scheme.build doc scs Secure.Scheme.Opt in
  let db = Secure.Encrypt.encrypt ~keys doc scheme in
  let target = Secure.Encrypt.encrypted_bytes db in
  (* Candidate databases: permutations of which patient has which
     disease — same multiset of values, hence same encrypted size. *)
  let candidates = List.init 20 (fun _ -> target) in
  let r = Secure.Attack.size_attack ~candidate_sizes:(99 :: candidates) ~target_size:target in
  Printf.printf
    "\n[size attack] %d candidates, %d survive (all value-permuted candidates \
     encrypt to identical size; only a malformed one is eliminated)\n"
    r.Secure.Attack.candidates r.Secure.Attack.survivors;

  (* Theorem 6.1: observing queries does not increase belief. *)
  let k = Xmlcore.Stats.distinct_count known in
  let n = List.length (Secure.Opess.ciphertext_histogram cat) in
  Printf.printf
    "\n[belief] association attacker, k=%d plaintext / n=%d ciphertext values:\n  %s\n"
    k n
    (String.concat " -> "
       (List.map (Printf.sprintf "%.2e") (Secure.Attack.belief_sequence ~k ~n ~queries:5)));
  print_endline "\nattack demo done."
