(* The paper's running example, end to end: the Figure 2 hospital
   database, the Example 3.1 security constraints, the four encryption
   schemes, the server metadata, the Figure 7 query translation, and
   the candidate counts behind Theorems 4.1/5.1/5.2.

     dune exec examples/healthcare.exe
*)

module System = Secure.System
module Scheme = Secure.Scheme

let section title =
  Printf.printf "\n=== %s ===\n" title

let () =
  let doc = Workload.Health.doc () in
  let scs = Workload.Health.constraints () in

  section "Database (Figure 2) and security constraints (Example 3.1)";
  Printf.printf "%s\n" (Xmlcore.Printer.doc_to_string ~indent:true doc);
  List.iteri (fun i sc -> Printf.printf "SC%d: %s\n" (i + 1) (Secure.Sc.to_string sc)) scs;

  section "Captured queries of SC3 (//patient:(pname, //disease))";
  let sc3 = List.nth scs 2 in
  List.iter
    (fun { Secure.Sc.query; _ } ->
      Printf.printf "  D |= %s\n" (Xpath.Ast.to_string query))
    (Secure.Sc.captured_queries doc sc3);

  section "Encryption schemes";
  List.iter
    (fun kind ->
      let scheme = Scheme.build doc scs kind in
      Printf.printf "%-4s: %2d blocks, size %2d nodes, cover = {%s}\n"
        (Scheme.kind_to_string kind) (Scheme.block_count scheme)
        (Scheme.size doc scheme)
        (String.concat ", " scheme.Scheme.covered_tags))
    Scheme.all_kinds;

  section "Hosted system under the optimal scheme";
  let sys, setup = System.setup doc scs Scheme.Opt in
  Printf.printf "server data: %d bytes; metadata: %d bytes\n"
    setup.System.server_data_bytes setup.System.metadata_bytes;
  let meta = System.metadata sys in
  Printf.printf "DSI index table: %d entries (%d intervals)\n"
    (List.length meta.Secure.Metadata.dsi_table)
    (Secure.Metadata.table_entry_count meta);
  Printf.printf "value B-tree: %d entries, height %d\n"
    (Secure.Metadata.btree_entry_count meta)
    (Btree.height meta.Secure.Metadata.btree);
  Printf.printf "\nDSI index table excerpt (token -> intervals):\n";
  List.iteri
    (fun i (token, intervals) ->
      if i < 8 then begin
        let shown = if String.length token > 24 then String.sub token 0 24 ^ ".." else token in
        Printf.printf "  %-26s %s\n" shown
          (String.concat " "
             (List.map (Format.asprintf "%a" Dsi.Interval.pp) intervals))
      end)
    meta.Secure.Metadata.dsi_table;

  section "Query translation (Figure 7)";
  let q = Xpath.Parser.parse "//patient[.//insurance//@coverage>='10000']//SSN" in
  Printf.printf "original  : %s\n" (Xpath.Ast.to_string q);
  let translated = Secure.Client.translate (System.client sys) q in
  Printf.printf "translated: %s\n" (Secure.Squery.to_string translated);

  section "Query evaluation";
  List.iter
    (fun qs ->
      let query = Xpath.Parser.parse qs in
      let answers, cost = System.evaluate sys query in
      Printf.printf "%-50s -> %d answer(s), %d block(s)\n" qs
        (List.length answers) cost.System.blocks_returned;
      List.iter
        (fun t -> Printf.printf "    %s\n" (Xmlcore.Printer.tree_to_string t))
        answers)
    [ "//patient[.//insurance//@coverage>='10000']//SSN";
      "//patient[pname='Betty']//disease";
      "//treat[disease='leukemia']/doctor" ];

  section "Candidate counts (Theorems 4.1, 5.1, 5.2)";
  (* Theorem 4.1's example: frequencies 3, 4, 5 of one attribute. *)
  (match Secure.Counting.multinomial [ 3; 4; 5 ] with
   | Some n ->
     Printf.printf
       "Theorem 4.1 example: frequencies {3,4,5} admit %Ld candidate databases\n" n
   | None -> ());
  (match Secure.Counting.compositions_count ~n:15 ~k:5 with
   | Some n ->
     Printf.printf
       "Theorems 5.1/5.2 example: n=15 ciphertext values over k=5 plaintext \
        values admit %Ld assignments\n"
       n
   | None -> ());
  (* Belief trajectory of Theorem 6.1, on a production-sized hospital
     (the two-patient example is degenerate: splitting needs enough
     occurrences per value to produce n >> k ciphertext values). *)
  let big = Workload.Health.generate ~patients:300 () in
  let hist = Xmlcore.Stats.value_histogram big ~tag:"disease" in
  let k = Xmlcore.Stats.distinct_count hist in
  let cat =
    Secure.Opess.build ~key:"belief-demo" ~attr_id:0 ~tag:"disease" hist
  in
  let n = List.length (Secure.Opess.ciphertext_histogram cat) in
  Printf.printf
    "300-patient hospital, disease attribute: k=%d plaintext, n=%d ciphertext \
     values;\nattacker belief per association: %s\n"
    k n
    (String.concat " -> "
       (List.map (Printf.sprintf "%.3g")
          (Secure.Attack.belief_sequence ~k ~n ~queries:3)));
  print_endline "\nhealthcare walkthrough done."
