(* A data owner's full lifecycle: host a database, persist the hosted
   bundle, reload it in a "later session", run queries and aggregates,
   apply updates, and verify the security constraints survive it all.

     dune exec examples/lifecycle.exe
*)

module System = Secure.System
module Update = Secure.Update

let parse = Xpath.Parser.parse

let show_answers label answers =
  Printf.printf "%s -> %d answer(s)\n" label (List.length answers);
  List.iter
    (fun t -> Printf.printf "    %s\n" (Xmlcore.Printer.tree_to_string t))
    answers

let () =
  let master = "lifecycle-demo-secret" in

  (* Day 0: host a 120-patient hospital database. *)
  let doc = Workload.Health.generate ~patients:120 () in
  let scs = Workload.Health.constraints () in
  let sys, setup = System.setup ~master doc scs Secure.Scheme.Opt in
  Printf.printf "hosted: %d blocks, %d bytes on the server, %d bytes metadata\n"
    setup.System.block_count setup.System.server_data_bytes
    setup.System.metadata_bytes;

  (* Persist the hosted bundle (the master secret is NOT in the file). *)
  let bundle = Filename.temp_file "lifecycle" ".sxq" in
  Secure.Persist.save sys bundle;
  Printf.printf "persisted to %s (%d bytes)\n" bundle
    (let ic = open_in_bin bundle in
     let n = in_channel_length ic in
     close_in ic;
     n);

  (* Day 1: reload and query — no re-encryption, no metadata rebuild. *)
  let sys = Secure.Persist.load ~master bundle in
  let answers, cost = System.evaluate sys (parse "//patient[.//disease='flu']/pname") in
  show_answers "flu patients" (List.filteri (fun i _ -> i < 3) answers);
  Printf.printf "  (%d blocks shipped, %.1f ms end to end)\n"
    cost.System.blocks_returned (System.total_ms cost);

  (* Aggregates: MAX ships at most one block. *)
  let oldest, agg_cost = System.aggregate sys `Max (parse "//patient/age") in
  Printf.printf "oldest patient age: %s (%d block(s) shipped)\n"
    (Option.value ~default:"-" oldest) agg_cost.System.blocks_returned;

  (* Day 30: updates — admit a patient, correct a record, discharge one. *)
  let admit =
    Update.Insert_child
      { parent = parse "/hospital";
        position = 0;
        subtree =
          Xmlcore.Tree.element "patient"
            [ Xmlcore.Tree.leaf "pname" "Newcomer";
              Xmlcore.Tree.leaf "SSN" "999000111";
              Xmlcore.Tree.element "treat"
                [ Xmlcore.Tree.leaf "disease" "flu";
                  Xmlcore.Tree.leaf "doctor" "Lee" ];
              Xmlcore.Tree.leaf "age" "52";
              Xmlcore.Tree.element "insurance"
                [ Xmlcore.Tree.attribute "coverage" "75000";
                  Xmlcore.Tree.leaf "policy#" "55555" ] ] }
  in
  let sys, recost = System.update sys admit in
  Printf.printf "admitted 1 patient (re-host took %.0f ms: %d blocks re-encrypted)\n"
    (recost.System.scheme_build_ms +. recost.System.encrypt_ms
     +. recost.System.metadata_ms)
    recost.System.block_count;
  let answers, _ = System.evaluate sys (parse "//patient[pname='Newcomer']//disease") in
  show_answers "new patient's diseases" answers;

  (* The SCs still hold after the update. *)
  (match Secure.Scheme.enforces (System.doc sys) (System.scheme sys) scs with
   | Ok () -> print_endline "security constraints verified on the updated database"
   | Error e -> failwith e);

  (* FLWOR queries run through the same protocol: the for/where parts
     are pushed to the server as one translated XPath query, the rest
     evaluates client-side inside the returned bindings. *)
  let flwor =
    Xquery.Parser.parse
      "for $p in //patient where $p/age >= 90 order by $p/age descending \
       return <senior>{$p/pname}{$p/age}</senior>"
  in
  let rows, _ = Xquery.Secure_run.evaluate sys flwor in
  Printf.printf "XQuery: %d seniors (eldest first):\n" (List.length rows);
  List.iteri
    (fun i t ->
      if i < 3 then Printf.printf "    %s\n" (Xmlcore.Printer.tree_to_string t))
    rows;
  assert (
    List.map Xmlcore.Printer.tree_to_string rows
    = List.map Xmlcore.Printer.tree_to_string (Xquery.Secure_run.reference sys flwor));

  (* Re-persist and clean up. *)
  Secure.Persist.save sys bundle;
  let reloaded = Secure.Persist.load ~master bundle in
  assert (
    List.length (fst (System.evaluate reloaded (parse "//patient")))
    = List.length (fst (System.evaluate sys (parse "//patient"))));
  Sys.remove bundle;
  print_endline "lifecycle demo done."
