(* Database-as-service scenario on XMark-like auction data: a site
   hosts its people directory on an untrusted provider, protecting who
   owns which credit card and related associations, then compares the
   four encryption schemes on a realistic query mix.

     dune exec examples/auction_host.exe -- [persons]
*)

module System = Secure.System
module Scheme = Secure.Scheme

let () =
  let persons =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 600
  in
  let doc = Workload.Xmark.generate ~persons () in
  let scs = Workload.Xmark.constraints () in
  Printf.printf "document: %d persons, %d nodes, %d bytes serialized\n" persons
    (Xmlcore.Doc.node_count doc)
    (String.length (Xmlcore.Printer.doc_to_string doc));
  List.iter (fun sc -> Printf.printf "  SC: %s\n" (Secure.Sc.to_string sc)) scs;

  let queries =
    List.map Xpath.Parser.parse
      [ "//person[profile/@income>=80000]/name";
        "//person[address/city='Seoul']/creditcard";
        "//person[name='Kasidit Luo']";
        "//people/person/emailaddress";
        "//profile[age>=70]" ]
  in
  Printf.printf "\n%-5s %8s %8s %9s %9s %9s %9s %8s\n" "schm" "blocks"
    "srv-MB" "setup-ms" "query-ms" "dec-ms" "post-ms" "blk/qry";
  List.iter
    (fun kind ->
      let sys, setup = System.setup doc scs kind in
      let totals = ref 0.0 and dec = ref 0.0 and post = ref 0.0 and blk = ref 0 in
      List.iter
        (fun q ->
          let answers, cost = System.evaluate sys q in
          (* Protocol answers must match plaintext evaluation. *)
          assert (
            List.length answers = List.length (System.reference sys q));
          totals := !totals +. System.total_ms cost;
          dec := !dec +. cost.System.decrypt_ms;
          post := !post +. cost.System.postprocess_ms;
          blk := !blk + cost.System.blocks_returned)
        queries;
      let n = float_of_int (List.length queries) in
      Printf.printf "%-5s %8d %8.2f %9.0f %9.1f %9.1f %9.1f %8d\n"
        (Scheme.kind_to_string kind) setup.System.block_count
        (float_of_int setup.System.server_data_bytes /. 1e6)
        (setup.System.scheme_build_ms +. setup.System.encrypt_ms
         +. setup.System.metadata_ms)
        (!totals /. n) (!dec /. n) (!post /. n)
        (!blk / List.length queries))
    Scheme.all_kinds;

  (* Against the naive ship-everything method. *)
  let sys, _ = System.setup doc scs Scheme.Opt in
  let q = List.hd queries in
  let _, secure_cost = System.evaluate sys q in
  let _, naive_cost = System.naive_evaluate sys q in
  Printf.printf
    "\nnaive method on the first query: %.1f ms vs %.1f ms secure (%.0f%% saved)\n"
    (System.total_ms naive_cost) (System.total_ms secure_cost)
    (100.0
     *. (System.total_ms naive_cost -. System.total_ms secure_cost)
     /. System.total_ms naive_cost);
  print_endline "auction hosting demo done."
