examples/auction_host.mli:
