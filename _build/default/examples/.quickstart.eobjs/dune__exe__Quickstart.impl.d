examples/quickstart.ml: List Printf Secure Xmlcore Xpath
