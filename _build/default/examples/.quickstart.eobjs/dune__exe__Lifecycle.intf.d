examples/lifecycle.mli:
