examples/healthcare.mli:
