examples/healthcare.ml: Btree Dsi Format List Printf Secure String Workload Xmlcore Xpath
