examples/bibliography.mli:
