examples/lifecycle.ml: Filename List Option Printf Secure Sys Workload Xmlcore Xpath Xquery
