examples/attack_demo.ml: Crypto List Printf Secure String Workload Xmlcore
