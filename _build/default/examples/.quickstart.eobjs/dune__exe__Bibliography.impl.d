examples/bibliography.ml: Crypto List Option Printf Secure Workload Xmlcore Xpath Xquery
