examples/quickstart.mli:
