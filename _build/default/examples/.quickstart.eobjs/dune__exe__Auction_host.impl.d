examples/auction_host.ml: Array List Printf Secure String Sys Workload Xmlcore Xpath
