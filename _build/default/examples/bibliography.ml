(* A conference consortium hosts its submission/review database (DBLP-like,
   five levels deep) on an untrusted provider: author identities and review
   scores are protected.  Demonstrates the newer surface — union queries,
   document-order axes, FLWOR, explain, and the access-pattern audit.

     dune exec examples/bibliography.exe
*)

module System = Secure.System

let parse = Xpath.Parser.parse

let () =
  let doc = Workload.Dblp.generate ~papers:120 () in
  let scs = Workload.Dblp.constraints () in
  Printf.printf "bibliography: %d nodes, height %d\n" (Xmlcore.Doc.node_count doc)
    (Xmlcore.Doc.height doc);
  List.iter (fun sc -> Printf.printf "  SC: %s\n" (Secure.Sc.to_string sc)) scs;
  let sys, setup = System.setup ~cipher:Crypto.Cipher.Aes doc scs Secure.Scheme.Opt in
  Printf.printf "hosted under AES-128: %d blocks, %d bytes on the server\n\n"
    setup.System.block_count setup.System.server_data_bytes;

  (* Union query across two protected attributes. *)
  let union = Xpath.Parser.parse_union "//review[score='5']/reviewer | //review[score='1']/reviewer" in
  let extremes, cost = System.evaluate_union sys union in
  Printf.printf "reviewers giving a 1 or a 5: %d (union query, %d blocks)\n"
    (List.length extremes) cost.System.blocks_returned;

  (* Document-order axes: titles whose paper has at least two authors
     (an author with a following author sibling). *)
  let q = parse "//inproceedings[author/following-sibling::author]/title" in
  let multi, _ = System.evaluate sys q in
  Printf.printf "multi-author papers: %d\n" (List.length multi);

  (* Server-side plan introspection. *)
  let translated = Secure.Client.translate (System.client sys) q in
  List.iter
    (fun r ->
      Printf.printf "  step %d: %d -> %d candidates\n" r.Secure.Server.step_index
        r.Secure.Server.raw_candidates r.Secure.Server.surviving_candidates)
    (Secure.Server.explain (System.server sys) translated);

  (* FLWOR: strong papers per the protected review scores. *)
  let flwor =
    Xquery.Parser.parse
      "for $p in //inproceedings let $r := ./review where $r/score >= 4 \
       return <strong>{$p/title}</strong>"
  in
  let strong, _ = Xquery.Secure_run.evaluate sys flwor in
  Printf.printf "papers with a score >= 4: %d\n" (List.length strong);
  assert (
    List.map Xmlcore.Printer.tree_to_string strong
    = List.map Xmlcore.Printer.tree_to_string (Xquery.Secure_run.reference sys flwor));

  (* MIN/MAX without decryption beyond one block. *)
  let best, agg_cost = System.aggregate sys `Max (parse "//review/score") in
  Printf.printf "highest score: %s (%d block decrypted)\n"
    (Option.value ~default:"-" best)
    agg_cost.System.blocks_returned;

  (* What the provider's logs reveal: run a session and audit it. *)
  let log = Secure.Audit.create () in
  List.iter
    (fun qs ->
      let q = parse qs in
      let squery = Secure.Client.translate (System.client sys) q in
      Secure.Audit.record log
        ~request:(Secure.Protocol.encode_request squery)
        ~response:(Secure.Server.answer (System.server sys) squery))
    [ "//inproceedings[title='nothing']"; "//review[score='5']/reviewer";
      "//review[score='5']/reviewer"; "//series/venue";
      "//review[score='5']/reviewer" ];
  let a = Secure.Audit.analyze log in
  Printf.printf
    "\naudit: %d queries, %d distinct — the provider links %d repeats and \
     sees %d access patterns\n"
    a.Secure.Audit.queries a.Secure.Audit.distinct_requests
    a.Secure.Audit.repeated_requests a.Secure.Audit.distinct_patterns;
  print_endline "bibliography demo done."
