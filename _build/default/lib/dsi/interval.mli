(** Real intervals for the DSI index.

    A node's interval strictly contains the intervals of all its
    descendants, and sibling intervals are separated by positive gaps
    whose sizes are randomized (the "discontinuous" part) so the server
    cannot reconstruct sibling adjacency or grouping. *)

type t = { lo : float; hi : float }

val make : float -> float -> t
(** @raise Invalid_argument if [lo >= hi]. *)

val contains : t -> t -> bool
(** [contains outer inner] iff [inner] lies strictly inside [outer]
    (the DSI construction guarantees strict insets for descendants). *)

val contains_point : t -> float -> bool

val disjoint : t -> t -> bool

val width : t -> float

val hull : t -> t -> t
(** Smallest interval covering both — used to group adjacent same-tag
    siblings into one table entry. *)

val compare_by_lo : t -> t -> int
(** Sort order: by lower bound, then by upper bound descending (so an
    ancestor sorts before its descendants). *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Renders like [\[0.16, 0.2\]]. *)
