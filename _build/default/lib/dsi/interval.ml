type t = { lo : float; hi : float }

let make lo hi =
  if lo >= hi then invalid_arg "Interval.make: lo must be < hi";
  { lo; hi }

let contains outer inner = outer.lo < inner.lo && inner.hi < outer.hi

let contains_point t x = t.lo <= x && x <= t.hi

let disjoint a b = a.hi < b.lo || b.hi < a.lo

let width t = t.hi -. t.lo

let hull a b = { lo = Float.min a.lo b.lo; hi = Float.max a.hi b.hi }

let compare_by_lo a b =
  match Float.compare a.lo b.lo with
  | 0 -> Float.compare b.hi a.hi
  | c -> c

let equal a b = Float.equal a.lo b.lo && Float.equal a.hi b.hi

let pp fmt t = Format.fprintf fmt "[%g, %g]" t.lo t.hi
