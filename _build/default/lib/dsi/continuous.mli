(** The classic {e continuous} interval index (Al-Khalifa et al., ICDE
    2002) — the baseline the DSI index is defined against
    (Section 5.1.1, footnote 2).

    Children tile their parent's interval with {e no gaps}: child [i]
    of a node with [N] children occupying [\[min, max\]] receives
    exactly [\[min + i·d, min + (i+1)·d\]] with [d = (max−min)/N].

    The paper's argument for DSI: if same-tag same-block siblings are
    grouped under a continuous index, the grouped hull's bounds
    coincide exactly with its neighbours' bounds, so the server can
    detect that grouping happened — and count the hidden members by
    dividing widths.  {!grouping_leak} makes that inference executable;
    the E8 ablation runs it against both indexes. *)

type t

val assign : Xmlcore.Doc.t -> t
(** Deterministic tiling (no weights — continuity leaves no room for
    randomness, which is the point). *)

val interval : t -> Xmlcore.Doc.node -> Interval.t

val hull_member_estimate : narrowest:Interval.t -> hull:Interval.t -> int
(** What the attacker computes: under continuous tiling every original
    child has the same slot width, so the narrowest visible sibling
    interval is one slot, and a hull's width divided by it counts the
    members it hides. *)

val grouping_leak :
  parent:Interval.t -> child_intervals:Interval.t list -> bool
(** Detects grouping under a continuous index: true iff the child
    intervals do not tile the parent evenly (some interval is wider
    than the common slot width), i.e. the server learns that grouping
    occurred.  Always false for DSI intervals, whose secret gap weights
    make every width pattern plausible. *)
