lib/dsi/join.ml: Array Hashtbl Interval List Option
