lib/dsi/interval.ml: Float Format
