lib/dsi/assign.ml: Array Crypto Float Int64 Interval List Printf Xmlcore
