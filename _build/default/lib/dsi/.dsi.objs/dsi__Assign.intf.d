lib/dsi/assign.mli: Interval Xmlcore
