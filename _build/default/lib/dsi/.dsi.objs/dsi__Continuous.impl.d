lib/dsi/continuous.ml: Array Float Interval List Xmlcore
