lib/dsi/join.mli: Interval
