lib/dsi/continuous.mli: Interval Xmlcore
