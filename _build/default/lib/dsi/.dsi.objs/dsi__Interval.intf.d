lib/dsi/interval.mli: Format
