module Doc = Xmlcore.Doc

type t = {
  doc : Doc.t;
  intervals : Interval.t array;
}

let interval t n = t.intervals.(n)

let assign doc =
  let n = Doc.node_count doc in
  let intervals = Array.make n (Interval.make 0.0 1.0) in
  let rec place node =
    let iv = intervals.(node) in
    let children = Doc.children doc node in
    let count = List.length children in
    if count > 0 then begin
      let d = Interval.width iv /. float_of_int count in
      List.iteri
        (fun idx child ->
          let lo = iv.Interval.lo +. (float_of_int idx *. d) in
          let hi = iv.Interval.lo +. (float_of_int (idx + 1) *. d) in
          intervals.(child) <- Interval.make lo hi;
          place child)
        children
    end
  in
  place (Doc.root doc);
  { doc; intervals }

(* Under even tiling each original child occupies one slot; a hull of k
   members is exactly k slots wide, so the width ratio against the
   narrowest visible sibling (one slot) counts the hidden members. *)
let hull_member_estimate ~narrowest ~hull =
  int_of_float (Float.round (Interval.width hull /. Interval.width narrowest))

let grouping_leak ~parent ~child_intervals =
  match child_intervals with
  | [] -> false
  | ivs ->
    let widths = List.map Interval.width ivs in
    let narrowest = List.fold_left Float.min infinity widths in
    (* Tiling check: every width an (approximate) integer multiple of
       the narrowest, gaps absent, and the widths sum to the parent. *)
    let total = List.fold_left ( +. ) 0.0 widths in
    let tolerance = 1e-9 *. Interval.width parent in
    let covers_parent = Float.abs (total -. Interval.width parent) < tolerance in
    let any_wider =
      List.exists (fun w -> w > narrowest +. tolerance) widths
    in
    (* Grouping is detected when intervals still tile the parent
       exactly (continuity preserved) but widths are unequal — only a
       hull can be wider than a slot. *)
    covers_parent && any_wider
