lib/xpath/ast.ml: Buffer Format Hashtbl List String
