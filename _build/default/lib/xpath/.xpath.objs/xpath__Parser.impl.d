lib/xpath/parser.ml: Ast List String
