lib/xpath/eval.mli: Ast Nav Xmlcore
