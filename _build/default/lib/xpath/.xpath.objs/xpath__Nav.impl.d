lib/xpath/nav.ml: Int List Xmlcore
