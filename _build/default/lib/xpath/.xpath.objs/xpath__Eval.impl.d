lib/xpath/eval.ml: Ast Hashtbl List Nav Option String Xmlcore
