(** XPath evaluation, parameterised over a {!Nav.S} navigation
    structure.

    The default instance works over plaintext {!Xmlcore.Doc} documents:
    it is used by the naive baseline, by tests as the reference
    semantics, and (through the composite instance in the secure
    library) by the client's post-processing. *)

val compare_values : string -> Ast.op -> string -> bool
(** [compare_values v op literal] — numeric comparison when both sides
    parse as numbers, lexicographic otherwise. *)

module Make (N : Nav.S) : sig
  val eval : N.doc -> Ast.path -> N.node list
  (** Nodes selected by the path, in document order, without
      duplicates.  Relative paths are evaluated from the root. *)

  val eval_from : N.doc -> N.node list -> Ast.path -> N.node list
  (** Evaluate with an explicit context node set (absolute paths ignore
      the context). *)

  val matches : N.doc -> Ast.path -> bool
  (** [matches doc p] iff [eval doc p] is non-empty — the paper's
      [D |= A] judgment. *)

  val eval_union : N.doc -> Ast.path list -> N.node list
  (** Union of the branch results, in document order without
      duplicates. *)
end

(** Evaluation over plaintext documents. *)

val eval : Xmlcore.Doc.t -> Ast.path -> Xmlcore.Doc.node list
val eval_from : Xmlcore.Doc.t -> Xmlcore.Doc.node list -> Ast.path -> Xmlcore.Doc.node list
val matches : Xmlcore.Doc.t -> Ast.path -> bool
val eval_union : Xmlcore.Doc.t -> Ast.path list -> Xmlcore.Doc.node list
