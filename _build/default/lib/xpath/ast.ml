type op = Eq | Neq | Lt | Le | Gt | Ge

type node_test =
  | Tag of string
  | Wildcard

type axis =
  | Child
  | Descendant_or_self
  | Parent
  | Following_sibling
  | Preceding_sibling
  | Following
  | Preceding

type predicate =
  | Exists of path
  | Compare of path * op * string
  | And of predicate * predicate
  | Or of predicate * predicate
  | Not of predicate

and step = {
  axis : axis;
  test : node_test;
  predicates : predicate list;
}

and path = {
  absolute : bool;
  steps : step list;
}

let self_path = { absolute = false; steps = [] }

let step ?(predicates = []) axis test = { axis; test; predicates }

let path ~absolute steps = { absolute; steps }

let op_to_string = function
  | Eq -> "="
  | Neq -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let rec equal_path a b =
  a.absolute = b.absolute
  && List.length a.steps = List.length b.steps
  && List.for_all2 equal_step a.steps b.steps

and equal_step a b =
  a.axis = b.axis && a.test = b.test
  && List.length a.predicates = List.length b.predicates
  && List.for_all2 equal_predicate a.predicates b.predicates

and equal_predicate a b =
  match a, b with
  | Exists p, Exists q -> equal_path p q
  | Compare (p, op1, v1), Compare (q, op2, v2) ->
    equal_path p q && op1 = op2 && String.equal v1 v2
  | And (a1, a2), And (b1, b2) | Or (a1, a2), Or (b1, b2) ->
    equal_predicate a1 b1 && equal_predicate a2 b2
  | Not a, Not b -> equal_predicate a b
  | (Exists _ | Compare _ | And _ | Or _ | Not _), _ -> false

let needs_quoting v =
  v = "" || not (String.for_all (function '0' .. '9' | '.' | '-' -> true | _ -> false) v)

let rec path_to_buffer out p =
  if p.steps = [] && not p.absolute then Buffer.add_char out '.'
  else
    List.iteri
      (fun i s ->
        let separator =
          match s.axis with
          | Child | Parent | Following_sibling | Preceding_sibling | Following
          | Preceding ->
            "/"
          | Descendant_or_self -> "//"
        in
        (* A leading child step of a relative path has no separator. *)
        if p.absolute || i > 0 || s.axis = Descendant_or_self then
          Buffer.add_string out separator;
        (match s.axis, s.test with
         | Parent, Wildcard -> Buffer.add_string out ".."
         | Parent, Tag tag -> Buffer.add_string out ("parent::" ^ tag)
         | Following_sibling, Tag tag ->
           Buffer.add_string out ("following-sibling::" ^ tag)
         | Following_sibling, Wildcard ->
           Buffer.add_string out "following-sibling::*"
         | Preceding_sibling, Tag tag ->
           Buffer.add_string out ("preceding-sibling::" ^ tag)
         | Preceding_sibling, Wildcard ->
           Buffer.add_string out "preceding-sibling::*"
         | Following, Tag tag -> Buffer.add_string out ("following::" ^ tag)
         | Following, Wildcard -> Buffer.add_string out "following::*"
         | Preceding, Tag tag -> Buffer.add_string out ("preceding::" ^ tag)
         | Preceding, Wildcard -> Buffer.add_string out "preceding::*"
         | (Child | Descendant_or_self), Tag tag -> Buffer.add_string out tag
         | (Child | Descendant_or_self), Wildcard -> Buffer.add_char out '*');
        List.iter
          (fun pred ->
            Buffer.add_char out '[';
            predicate_to_buffer out pred;
            Buffer.add_char out ']')
          s.predicates)
      p.steps

and predicate_to_buffer out = function
  | Exists q -> path_to_buffer out q
  | Compare (q, op, v) ->
    path_to_buffer out q;
    Buffer.add_string out (op_to_string op);
    if needs_quoting v then begin
      Buffer.add_char out '\'';
      Buffer.add_string out v;
      Buffer.add_char out '\''
    end
    else Buffer.add_string out v
  | And (a, b) ->
    predicate_operand out a;
    Buffer.add_string out " and ";
    predicate_operand out b
  | Or (a, b) ->
    predicate_operand out a;
    Buffer.add_string out " or ";
    predicate_operand out b
  | Not a ->
    Buffer.add_string out "not(";
    predicate_to_buffer out a;
    Buffer.add_char out ')'

(* Parenthesise compound operands so the rendering re-parses with the
   same associativity. *)
and predicate_operand out pred =
  match pred with
  | And _ | Or _ ->
    Buffer.add_char out '(';
    predicate_to_buffer out pred;
    Buffer.add_char out ')'
  | Exists _ | Compare _ | Not _ -> predicate_to_buffer out pred

let to_string p =
  let out = Buffer.create 32 in
  path_to_buffer out p;
  Buffer.contents out

let pp fmt p = Format.pp_print_string fmt (to_string p)

let tags_of_path p =
  let seen = Hashtbl.create 8 in
  let order = ref [] in
  let add tag =
    if not (Hashtbl.mem seen tag) then begin
      Hashtbl.add seen tag ();
      order := tag :: !order
    end
  in
  let rec walk_path p = List.iter walk_step p.steps
  and walk_step s =
    (match s.test with Tag tag -> add tag | Wildcard -> ());
    List.iter walk_predicate s.predicates
  and walk_predicate = function
    | Exists q -> walk_path q
    | Compare (q, _, _) -> walk_path q
    | And (a, b) | Or (a, b) ->
      walk_predicate a;
      walk_predicate b
    | Not a -> walk_predicate a
  in
  walk_path p;
  List.rev !order
