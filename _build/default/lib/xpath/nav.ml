(** Navigation interface the evaluator is parameterised over.

    {!Xmlcore.Doc} is the canonical instance; the secure client adds a
    composite instance that stitches the public skeleton together with
    decrypted blocks without materialising a combined document. *)

module type S = sig
  type doc
  type node

  val root : doc -> node
  val children : doc -> node -> node list
  (** Child elements in document order. *)

  val descendants : doc -> node -> node list
  (** Proper descendants in document order. *)

  val parent : doc -> node -> node option
  (** [None] for the root. *)

  val following_siblings : doc -> node -> node list
  (** Siblings strictly after the node, in document order. *)

  val all_nodes : doc -> node list
  (** Every node in document order (for absolute [//] steps). *)

  val tag : doc -> node -> string
  val value : doc -> node -> string option

  val compare_node : node -> node -> int
  (** Document order; used for sorting and deduplication. *)
end

module Doc_nav = struct
  type doc = Xmlcore.Doc.t
  type node = Xmlcore.Doc.node

  let root = Xmlcore.Doc.root
  let children = Xmlcore.Doc.children
  let descendants = Xmlcore.Doc.descendants
  let parent = Xmlcore.Doc.parent
  let all_nodes doc = List.init (Xmlcore.Doc.node_count doc) (fun i -> i)
  let tag = Xmlcore.Doc.tag
  let value = Xmlcore.Doc.value
  let compare_node = Int.compare

  let following_siblings doc n =
    match Xmlcore.Doc.parent doc n with
    | None -> []
    | Some p ->
      let rec after = function
        | [] -> []
        | c :: rest -> if c = n then rest else after rest
      in
      after (Xmlcore.Doc.children doc p)
end
