exception Parse_error of { position : int; message : string }

type state = { input : string; mutable pos : int }

let fail st message = raise (Parse_error { position = st.pos; message })

let peek st = if st.pos < String.length st.input then Some st.input.[st.pos] else None

let looking_at st prefix =
  let n = String.length prefix in
  st.pos + n <= String.length st.input && String.sub st.input st.pos n = prefix

let advance st n = st.pos <- st.pos + n

let skip_spaces st =
  while (match peek st with Some (' ' | '\t' | '\n') -> true | _ -> false) do
    advance st 1
  done

let is_name_start = function
  | 'a' .. 'z' | 'A' .. 'Z' | '_' -> true
  | _ -> false

let is_name_char c =
  is_name_start c || (match c with '0' .. '9' | '-' | '.' | '#' -> true | _ -> false)

let parse_name st =
  let start = st.pos in
  (match peek st with
   | Some c when is_name_start c -> advance st 1
   | _ -> fail st "expected a name");
  while (match peek st with Some c when is_name_char c -> true | _ -> false) do
    advance st 1
  done;
  String.sub st.input start (st.pos - start)

let parse_nametest st =
  match peek st with
  | Some '*' -> advance st 1; Ast.Wildcard
  | Some '@' -> advance st 1; Ast.Tag ("@" ^ parse_name st)
  | Some c when is_name_start c -> Ast.Tag (parse_name st)
  | Some _ | None -> fail st "expected a name test"

let parse_literal st =
  skip_spaces st;
  match peek st with
  | Some (('\'' | '"') as quote) ->
    advance st 1;
    let close =
      match String.index_from_opt st.input st.pos quote with
      | Some i -> i
      | None -> fail st "unterminated string literal"
    in
    let v = String.sub st.input st.pos (close - st.pos) in
    st.pos <- close + 1;
    v
  | Some ('0' .. '9' | '-') ->
    let start = st.pos in
    if peek st = Some '-' then advance st 1;
    while (match peek st with Some ('0' .. '9' | '.') -> true | _ -> false) do
      advance st 1
    done;
    if st.pos = start then fail st "expected a literal";
    String.sub st.input start (st.pos - start)
  | Some _ | None -> fail st "expected a literal"

let parse_op st =
  skip_spaces st;
  if looking_at st "!=" then begin advance st 2; Some Ast.Neq end
  else if looking_at st "<=" then begin advance st 2; Some Ast.Le end
  else if looking_at st ">=" then begin advance st 2; Some Ast.Ge end
  else if looking_at st "=" then begin advance st 1; Some Ast.Eq end
  else if looking_at st "<" then begin advance st 1; Some Ast.Lt end
  else if looking_at st ">" then begin advance st 1; Some Ast.Gt end
  else None

(* Steps of a path after its leading separator handling.  [first_axis]
   is the axis of the first step.  Explicit axes ([..], [parent::],
   [following-sibling::]) are only reachable through a single slash. *)
let rec parse_steps st first_axis =
  let parse_one_step axis =
    if looking_at st ".." then begin
      if axis <> Ast.Child then fail st "'..' must follow a single '/'";
      advance st 2;
      let predicates = parse_predicates st in
      Ast.step ~predicates Ast.Parent Ast.Wildcard
    end
    else if looking_at st "parent::" then begin
      if axis <> Ast.Child then fail st "parent:: must follow a single '/'";
      advance st 8;
      let test = parse_nametest st in
      let predicates = parse_predicates st in
      Ast.step ~predicates Ast.Parent test
    end
    else if looking_at st "following-sibling::" then begin
      if axis <> Ast.Child then fail st "following-sibling:: must follow a single '/'";
      advance st 19;
      let test = parse_nametest st in
      let predicates = parse_predicates st in
      Ast.step ~predicates Ast.Following_sibling test
    end
    else if looking_at st "preceding-sibling::" then begin
      if axis <> Ast.Child then fail st "preceding-sibling:: must follow a single '/'";
      advance st 19;
      let test = parse_nametest st in
      let predicates = parse_predicates st in
      Ast.step ~predicates Ast.Preceding_sibling test
    end
    else if looking_at st "following::" then begin
      if axis <> Ast.Child then fail st "following:: must follow a single '/'";
      advance st 11;
      let test = parse_nametest st in
      let predicates = parse_predicates st in
      Ast.step ~predicates Ast.Following test
    end
    else if looking_at st "preceding::" then begin
      if axis <> Ast.Child then fail st "preceding:: must follow a single '/'";
      advance st 11;
      let test = parse_nametest st in
      let predicates = parse_predicates st in
      Ast.step ~predicates Ast.Preceding test
    end
    else begin
      let test = parse_nametest st in
      let predicates = parse_predicates st in
      Ast.step ~predicates axis test
    end
  in
  let rec loop acc axis =
    let acc = parse_one_step axis :: acc in
    if looking_at st "//" then begin advance st 2; loop acc Ast.Descendant_or_self end
    else if looking_at st "/" then begin advance st 1; loop acc Ast.Child end
    else List.rev acc
  in
  loop [] first_axis

and parse_predicates st =
  let rec loop acc =
    skip_spaces st;
    if looking_at st "[" then begin
      advance st 1;
      let pred = parse_pred_or st in
      skip_spaces st;
      if not (looking_at st "]") then fail st "expected ']'";
      advance st 1;
      loop (pred :: acc)
    end
    else List.rev acc
  in
  loop []

(* Boolean predicate grammar: or < and < unary; 'and'/'or' bind like
   XPath 1.0, [not(...)] and parentheses group. *)
and parse_pred_or st =
  let left = parse_pred_and st in
  skip_spaces st;
  if at_boolean_keyword st "or" then begin
    advance st 2;
    Ast.Or (left, parse_pred_or st)
  end
  else left

and parse_pred_and st =
  let left = parse_pred_unary st in
  skip_spaces st;
  if at_boolean_keyword st "and" then begin
    advance st 3;
    Ast.And (left, parse_pred_and st)
  end
  else left

and parse_pred_unary st =
  skip_spaces st;
  if at_boolean_keyword st "not" then begin
    let saved = st.pos in
    advance st 3;
    skip_spaces st;
    if looking_at st "(" then begin
      advance st 1;
      let inner = parse_pred_or st in
      skip_spaces st;
      if not (looking_at st ")") then fail st "expected ')'";
      advance st 1;
      Ast.Not inner
    end
    else begin
      (* A tag that merely starts with "not". *)
      st.pos <- saved;
      parse_pred_atom st
    end
  end
  else if looking_at st "(" then begin
    advance st 1;
    let inner = parse_pred_or st in
    skip_spaces st;
    if not (looking_at st ")") then fail st "expected ')'";
    advance st 1;
    inner
  end
  else parse_pred_atom st

and parse_pred_atom st =
  skip_spaces st;
  let inner = parse_relative_path st in
  match parse_op st with
  | None -> Ast.Exists inner
  | Some op ->
    let literal = parse_literal st in
    Ast.Compare (inner, op, literal)

(* 'and'/'or'/'not' are keywords only when not part of a longer name;
   'not' additionally requires a following '('. *)
and at_boolean_keyword st kw =
  looking_at st kw
  && (let after = st.pos + String.length kw in
      after >= String.length st.input
      ||
      match st.input.[after] with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' | '.' | '#' -> false
      | _ -> true)

(* Relative path inside a predicate: '.', './/a', './a', 'a/b', '//a',
   '@x' ... *)
and parse_relative_path st =
  skip_spaces st;
  if looking_at st ".//" then begin
    advance st 3;
    Ast.path ~absolute:false (parse_steps st Ast.Descendant_or_self)
  end
  else if looking_at st ".." then
    (* Leading parent step(s), e.g. [../sibling = 'x']. *)
    Ast.path ~absolute:false (parse_steps st Ast.Child)
  else if looking_at st "./" then begin
    advance st 2;
    Ast.path ~absolute:false (parse_steps st Ast.Child)
  end
  else if looking_at st "." then begin
    advance st 1;
    Ast.self_path
  end
  else if looking_at st "//" then begin
    advance st 2;
    Ast.path ~absolute:false (parse_steps st Ast.Descendant_or_self)
  end
  else if looking_at st "/" then begin
    advance st 1;
    Ast.path ~absolute:false (parse_steps st Ast.Child)
  end
  else Ast.path ~absolute:false (parse_steps st Ast.Child)

let split_union input =
  (* Split on '|' at depth 0, outside quotes. *)
  let n = String.length input in
  let parts = ref [] in
  let start = ref 0 in
  let depth = ref 0 in
  let quote = ref None in
  for i = 0 to n - 1 do
    match !quote, input.[i] with
    | Some q, c -> if c = q then quote := None
    | None, (('\'' | '"') as q) -> quote := Some q
    | None, '[' -> incr depth
    | None, ']' -> decr depth
    | None, '|' when !depth = 0 ->
      parts := String.sub input !start (i - !start) :: !parts;
      start := i + 1
    | None, _ -> ()
  done;
  parts := String.sub input !start (n - !start) :: !parts;
  List.rev !parts

let parse input =
  let st = { input; pos = 0 } in
  skip_spaces st;
  let result =
    if looking_at st "//" then begin
      advance st 2;
      Ast.path ~absolute:true (parse_steps st Ast.Descendant_or_self)
    end
    else if looking_at st "/" then begin
      advance st 1;
      Ast.path ~absolute:true (parse_steps st Ast.Child)
    end
    else parse_relative_path st
  in
  skip_spaces st;
  if st.pos <> String.length input then fail st "trailing input after path";
  result

let parse_union input =
  List.map (fun branch -> parse (String.trim branch)) (split_union input)
