(** Parser for the XPath fragment of {!Ast}.

    Grammar (whitespace allowed between tokens):
    {v
      path      ::= '.' | ['/' | '//'] step (('/' | '//') step)*
      step      ::= nametest predicate*
      nametest  ::= NAME | '@' NAME | '*'
      predicate ::= '[' relpath (op literal)? ']'
      relpath   ::= '.' ('/'|'//' step)* | step (('/'|'//') step)*
                  | './/' step ...            (leading self-descendant)
      op        ::= '=' | '!=' | '<' | '<=' | '>' | '>='
      literal   ::= '\'' chars '\'' | '"' chars '"' | number
    v} *)

exception Parse_error of { position : int; message : string }

val parse : string -> Ast.path
(** @raise Parse_error on malformed input. *)

val parse_union : string -> Ast.path list
(** [parse_union "//a | //b/c"] splits on top-level [|] (outside
    predicates and literals) and parses each branch; a single path
    yields a one-element list.
    @raise Parse_error on malformed input or an empty branch. *)
