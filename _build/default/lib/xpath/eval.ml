let compare_values v op literal =
  let result =
    match float_of_string_opt v, float_of_string_opt literal with
    | Some a, Some b -> compare a b
    | Some _, None | None, Some _ | None, None -> String.compare v literal
  in
  match op with
  | Ast.Eq -> result = 0
  | Ast.Neq -> result <> 0
  | Ast.Lt -> result < 0
  | Ast.Le -> result <= 0
  | Ast.Gt -> result > 0
  | Ast.Ge -> result >= 0

module Make (N : Nav.S) = struct
  let test_matches doc node = function
    | Ast.Tag tag -> String.equal (N.tag doc node) tag
    | Ast.Wildcard -> not (Xmlcore.Tree.is_attribute_tag (N.tag doc node))

  let sort_unique nodes = List.sort_uniq N.compare_node nodes

  (* [None] origin is the virtual document node of an absolute path:
     its only child is the root, its descendants are all nodes. *)
  let preceding_siblings doc n =
    match N.parent doc n with
    | None -> []
    | Some p ->
      let rec before = function
        | [] -> []
        | c :: rest -> if N.compare_node c n = 0 then [] else c :: before rest
      in
      before (N.children doc p)

  let ancestors doc n =
    let rec up acc m =
      match N.parent doc m with
      | None -> acc
      | Some p -> up (p :: acc) p
    in
    up [] n

  (* Nodes strictly after the context's subtree / strictly before the
     context excluding its ancestors (standard XPath semantics). *)
  let following doc n =
    let in_subtree = Hashtbl.create 64 in
    List.iter (fun d -> Hashtbl.replace in_subtree d ()) (N.descendants doc n);
    List.filter
      (fun m -> N.compare_node m n > 0 && not (Hashtbl.mem in_subtree m))
      (N.all_nodes doc)

  let preceding doc n =
    let ancestor_set = Hashtbl.create 16 in
    List.iter (fun a -> Hashtbl.replace ancestor_set a ()) (ancestors doc n);
    List.filter
      (fun m -> N.compare_node m n < 0 && not (Hashtbl.mem ancestor_set m))
      (N.all_nodes doc)

  let axis_candidates doc origin axis =
    match origin, axis with
    | None, Ast.Child -> [ N.root doc ]
    | None, Ast.Descendant_or_self -> N.all_nodes doc
    | None, (Ast.Parent | Ast.Following_sibling | Ast.Preceding_sibling
            | Ast.Following | Ast.Preceding) ->
      []
    | Some n, Ast.Child -> N.children doc n
    | Some n, Ast.Descendant_or_self -> N.descendants doc n
    | Some n, Ast.Parent -> Option.to_list (N.parent doc n)
    | Some n, Ast.Following_sibling -> N.following_siblings doc n
    | Some n, Ast.Preceding_sibling -> preceding_siblings doc n
    | Some n, Ast.Following -> following doc n
    | Some n, Ast.Preceding -> preceding doc n

  let rec eval_steps doc origins steps =
    match steps with
    | [] -> sort_unique (List.filter_map (fun o -> o) origins)
    | step :: rest ->
      let selected =
        List.concat_map
          (fun origin ->
            List.filter
              (fun candidate ->
                test_matches doc candidate step.Ast.test
                && List.for_all (predicate_holds doc candidate) step.Ast.predicates)
              (axis_candidates doc origin step.Ast.axis))
          origins
      in
      eval_steps doc (List.map (fun n -> Some n) (sort_unique selected)) rest

  and predicate_holds doc node = function
    | Ast.And (a, b) -> predicate_holds doc node a && predicate_holds doc node b
    | Ast.Or (a, b) -> predicate_holds doc node a || predicate_holds doc node b
    | Ast.Not a -> not (predicate_holds doc node a)
    | Ast.Exists p -> eval_steps doc [ Some node ] p.Ast.steps <> []
    | Ast.Compare (p, op, literal) ->
      let targets =
        if p.Ast.steps = [] then [ node ] else eval_steps doc [ Some node ] p.Ast.steps
      in
      List.exists
        (fun m ->
          match N.value doc m with
          | Some v -> compare_values v op literal
          | None -> false)
        targets

  let eval_from doc context p =
    if p.Ast.absolute then eval_steps doc [ None ] p.Ast.steps
    else eval_steps doc (List.map (fun n -> Some n) context) p.Ast.steps

  let eval doc p =
    if p.Ast.absolute then eval_steps doc [ None ] p.Ast.steps
    else eval_steps doc [ Some (N.root doc) ] p.Ast.steps

  let matches doc p = eval doc p <> []

  let eval_union doc paths = sort_unique (List.concat_map (eval doc) paths)
end

module Plain = Make (Nav.Doc_nav)

let eval = Plain.eval
let eval_from = Plain.eval_from
let matches = Plain.matches
let eval_union = Plain.eval_union
