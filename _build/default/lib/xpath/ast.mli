(** Abstract syntax for the XPath fragment used by the paper.

    The fragment covers everything appearing in the paper's security
    constraints and experiment queries:
    - absolute and relative location paths,
    - [child] ([/]) and [descendant-or-self] ([//]) axes,
    - name tests, the [*] wildcard, and attribute tests ([@name] — in
      our data model attributes are ["@"]-prefixed leaf children, so an
      attribute test is a child-axis name test on ["@name"]),
    - existence predicates [\[p\]] and comparison predicates
      [\[p op literal\]] with [op] one of [=, !=, <, <=, >, >=], where
      [p] may be [.] (the context node itself). *)

type op = Eq | Neq | Lt | Le | Gt | Ge

type node_test =
  | Tag of string   (** name test; attribute tests use the ["@"] prefix *)
  | Wildcard        (** [*] — any element (not attributes) *)

type axis =
  | Child                (** [/] *)
  | Descendant_or_self   (** [//] *)
  | Parent               (** [..] or [parent::t] *)
  | Following_sibling    (** [following-sibling::t] — Section 5.1 names this
                             axis as efficiently computable on DSI intervals *)
  | Preceding_sibling    (** [preceding-sibling::t] *)
  | Following            (** [following::t] — after the context subtree *)
  | Preceding            (** [preceding::t] — before the context, excluding
                             ancestors *)

type predicate =
  | Exists of path                  (** [\[p\]] *)
  | Compare of path * op * string   (** [\[p op literal\]]; empty relative
                                        path means [.] *)
  | And of predicate * predicate    (** [\[a and b\]] *)
  | Or of predicate * predicate     (** [\[a or b\]] *)
  | Not of predicate                (** [\[not(a)\]] *)

and step = {
  axis : axis;
  test : node_test;
  predicates : predicate list;
}

and path = {
  absolute : bool;   (** true when rooted at the document root *)
  steps : step list;
}

val self_path : path
(** The relative path [.] (no steps). *)

val step : ?predicates:predicate list -> axis -> node_test -> step

val path : absolute:bool -> step list -> path

val equal_path : path -> path -> bool

val op_to_string : op -> string

val to_string : path -> string
(** Render back to XPath surface syntax (parseable by {!Parser}). *)

val pp : Format.formatter -> path -> unit

val tags_of_path : path -> string list
(** Every tag mentioned in the path including inside predicates,
    without duplicates, in first-appearance order.  Used by the scheme
    constructor and the query translator. *)
