lib/xquery/ast.ml: Buffer Format List Printf String Xpath
