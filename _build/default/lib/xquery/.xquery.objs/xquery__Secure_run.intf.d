lib/xquery/secure_run.mli: Ast Secure Xmlcore
