lib/xquery/secure_run.ml: Ast Eval List Secure Xmlcore
