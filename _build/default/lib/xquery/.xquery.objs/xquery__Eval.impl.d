lib/xquery/eval.ml: Ast Float List Printf String Xmlcore Xpath
