lib/xquery/parser.ml: Ast List Printf String Xpath
