lib/xquery/eval.mli: Ast Xmlcore Xpath
