exception Parse_error of { position : int; message : string }

type state = { input : string; mutable pos : int }

let fail st message = raise (Parse_error { position = st.pos; message })

let peek st = if st.pos < String.length st.input then Some st.input.[st.pos] else None

let advance st n = st.pos <- st.pos + n

let skip_spaces st =
  while (match peek st with Some (' ' | '\t' | '\n' | '\r') -> true | _ -> false) do
    advance st 1
  done

let looking_at st prefix =
  let n = String.length prefix in
  st.pos + n <= String.length st.input && String.sub st.input st.pos n = prefix

(* A keyword must be followed by a non-name character. *)
let at_keyword st kw =
  looking_at st kw
  && (st.pos + String.length kw >= String.length st.input
      ||
      match st.input.[st.pos + String.length kw] with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> false
      | _ -> true)

let expect_keyword st kw =
  skip_spaces st;
  if at_keyword st kw then advance st (String.length kw)
  else fail st (Printf.sprintf "expected '%s'" kw)

let parse_name st =
  let start = st.pos in
  (match peek st with
   | Some ('a' .. 'z' | 'A' .. 'Z' | '_') -> advance st 1
   | _ -> fail st "expected a name");
  let continue () =
    match peek st with
    | Some ('a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' | '.' | '#' | '@') -> true
    | _ -> false
  in
  while continue () do
    advance st 1
  done;
  String.sub st.input start (st.pos - start)

let parse_var st =
  skip_spaces st;
  if peek st <> Some '$' then fail st "expected '$'";
  advance st 1;
  parse_name st

(* Scan forward from the current position to find where a path ends:
   at depth 0 (outside predicates and quotes), a path ends before any
   of the stop words, before '}', or at end of input. *)
let path_end st ~stop_words =
  let n = String.length st.input in
  let rec scan i depth quote =
    if i >= n then i
    else
      match quote, st.input.[i] with
      | Some q, c -> scan (i + 1) depth (if c = q then None else quote)
      | None, ('\'' | '"') -> scan (i + 1) depth (Some st.input.[i])
      | None, '[' -> scan (i + 1) (depth + 1) None
      | None, ']' -> scan (i + 1) (depth - 1) None
      | None, '}' when depth = 0 -> i
      | None, (' ' | '\t' | '\n' | '\r') when depth = 0 ->
        (* Possible boundary: check for a stop word after the spaces. *)
        let j = ref i in
        while
          !j < n
          && (match st.input.[!j] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
        do
          incr j
        done;
        let saved = st.pos in
        st.pos <- !j;
        let stops = List.exists (fun kw -> at_keyword st kw) stop_words in
        st.pos <- saved;
        if stops || !j >= n then i else scan !j depth None
      | None, _ -> scan (i + 1) depth None
  in
  scan st.pos 0 None

let parse_path st ~stop_words =
  skip_spaces st;
  let stop = path_end st ~stop_words in
  let text = String.trim (String.sub st.input st.pos (stop - st.pos)) in
  if text = "" then fail st "expected a path";
  (match Xpath.Parser.parse text with
   | path ->
     st.pos <- stop;
     path
   | exception Xpath.Parser.Parse_error { position; message } ->
     raise
       (Parse_error { position = st.pos + position; message = "in path: " ^ message }))

(* Relative form: strip a leading '/' meaning "from the binding". *)
let as_relative path = { path with Xpath.Ast.absolute = false }

(* [$v], [$v/relpath] or [.] / [./relpath] style expressions inside
   braces and conditions. *)
let parse_expr st ~stop_words ~default_var =
  skip_spaces st;
  if peek st = Some '$' then begin
    let var = parse_var st in
    if peek st = Some '/' then begin
      advance st 1;
      let path = as_relative (parse_path st ~stop_words) in
      { Ast.var; steps = Some path }
    end
    else { Ast.var; steps = None }
  end
  else begin
    let path = as_relative (parse_path st ~stop_words) in
    { Ast.var = default_var; steps = Some path }
  end

(* Conditions: expr op literal. The xpath sub-parser would swallow the
   comparison as a predicate-less trailing token, so locate the
   operator first. *)
let find_operator st =
  let n = String.length st.input in
  let rec scan i depth quote =
    if i >= n then None
    else
      match quote, st.input.[i] with
      | Some q, c -> scan (i + 1) depth (if c = q then None else quote)
      | None, ('\'' | '"') -> scan (i + 1) depth (Some st.input.[i])
      | None, '[' -> scan (i + 1) (depth + 1) None
      | None, ']' -> scan (i + 1) (depth - 1) None
      | None, ('=' | '<' | '>' | '!') when depth = 0 -> Some i
      | None, _ -> scan (i + 1) depth None
  in
  scan st.pos 0 None

let parse_condition st ~default_var =
  skip_spaces st;
  let op_pos =
    match find_operator st with
    | Some i -> i
    | None -> fail st "expected a comparison"
  in
  let lhs_text = String.trim (String.sub st.input st.pos (op_pos - st.pos)) in
  if lhs_text = "" then fail st "expected a comparison subject";
  let subject, path =
    if lhs_text.[0] = '$' then begin
      (* $var or $var/relpath *)
      match String.index_opt lhs_text '/' with
      | None ->
        let var = String.sub lhs_text 1 (String.length lhs_text - 1) in
        Some var, Xpath.Ast.self_path
      | Some slash ->
        let var = String.sub lhs_text 1 (slash - 1) in
        let rest = String.sub lhs_text (slash + 1) (String.length lhs_text - slash - 1) in
        (match Xpath.Parser.parse rest with
         | p -> Some var, as_relative p
         | exception Xpath.Parser.Parse_error { message; _ } ->
           fail st ("in condition path: " ^ message))
    end
    else
      match Xpath.Parser.parse lhs_text with
      | p -> None, as_relative p
      | exception Xpath.Parser.Parse_error { message; _ } ->
        fail st ("in condition path: " ^ message)
  in
  ignore default_var;
  st.pos <- op_pos;
  let op =
    if looking_at st "!=" then begin advance st 2; Xpath.Ast.Neq end
    else if looking_at st "<=" then begin advance st 2; Xpath.Ast.Le end
    else if looking_at st ">=" then begin advance st 2; Xpath.Ast.Ge end
    else if looking_at st "=" then begin advance st 1; Xpath.Ast.Eq end
    else if looking_at st "<" then begin advance st 1; Xpath.Ast.Lt end
    else if looking_at st ">" then begin advance st 1; Xpath.Ast.Gt end
    else fail st "expected a comparison operator"
  in
  skip_spaces st;
  let literal =
    match peek st with
    | Some (('\'' | '"') as quote) ->
      advance st 1;
      let close =
        match String.index_from_opt st.input st.pos quote with
        | Some i -> i
        | None -> fail st "unterminated literal"
      in
      let v = String.sub st.input st.pos (close - st.pos) in
      st.pos <- close + 1;
      v
    | Some ('0' .. '9' | '-') ->
      let start = st.pos in
      if peek st = Some '-' then advance st 1;
      while (match peek st with Some ('0' .. '9' | '.') -> true | _ -> false) do
        advance st 1
      done;
      String.sub st.input start (st.pos - start)
    | Some _ | None -> fail st "expected a literal"
  in
  { Ast.subject; path; op; literal }

(* --- Templates ----------------------------------------------------- *)

let rec parse_item st ~default_var =
  skip_spaces st;
  if looking_at st "</" then fail st "unexpected close tag"
  else if peek st = Some '<' then begin
    advance st 1;
    let tag = parse_name st in
    skip_spaces st;
    if peek st <> Some '>' then fail st "expected '>'";
    advance st 1;
    let items = ref [] in
    let finished = ref false in
    while not !finished do
      skip_spaces st;
      if looking_at st "</" then begin
        advance st 2;
        let close = parse_name st in
        if close <> tag then
          fail st (Printf.sprintf "mismatched </%s> for <%s>" close tag);
        skip_spaces st;
        if peek st <> Some '>' then fail st "expected '>'";
        advance st 1;
        finished := true
      end
      else if peek st = Some '<' then items := parse_item st ~default_var :: !items
      else if peek st = Some '{' then begin
        advance st 1;
        let e = parse_expr st ~stop_words:[] ~default_var in
        skip_spaces st;
        if peek st <> Some '}' then fail st "expected '}'";
        advance st 1;
        items := Ast.Splice e :: !items
      end
      else begin
        (* Text run until <, { or } *)
        let start = st.pos in
        while
          (match peek st with
           | Some ('<' | '{' | '}') | None -> false
           | Some _ -> true)
        do
          advance st 1
        done;
        if st.pos = start then fail st "unterminated element constructor";
        let text = String.trim (String.sub st.input start (st.pos - start)) in
        if text <> "" then items := Ast.Text text :: !items
      end
    done;
    Ast.Elem (tag, List.rev !items)
  end
  else if peek st = Some '{' then begin
    advance st 1;
    let e = parse_expr st ~stop_words:[] ~default_var in
    skip_spaces st;
    if peek st <> Some '}' then fail st "expected '}'";
    advance st 1;
    Ast.Splice e
  end
  else fail st "expected an element constructor or a splice"

(* --- Whole query --------------------------------------------------- *)

let clause_words = [ "let"; "where"; "order"; "return"; "and"; "descending" ]

let parse input =
  let st = { input; pos = 0 } in
  expect_keyword st "for";
  let for_var = parse_var st in
  expect_keyword st "in";
  let source = parse_path st ~stop_words:clause_words in
  let lets = ref [] in
  let rec parse_lets () =
    skip_spaces st;
    if at_keyword st "let" then begin
      advance st 3;
      let v = parse_var st in
      skip_spaces st;
      if not (looking_at st ":=") then fail st "expected ':='";
      advance st 2;
      let p = as_relative (parse_path st ~stop_words:clause_words) in
      lets := (v, p) :: !lets;
      parse_lets ()
    end
  in
  parse_lets ();
  let where = ref [] in
  skip_spaces st;
  if at_keyword st "where" then begin
    advance st 5;
    let rec conds () =
      where := parse_condition st ~default_var:for_var :: !where;
      skip_spaces st;
      if at_keyword st "and" then begin
        advance st 3;
        conds ()
      end
    in
    conds ()
  end;
  let order_by = ref None in
  skip_spaces st;
  if at_keyword st "order" then begin
    advance st 5;
    expect_keyword st "by";
    skip_spaces st;
    (* The key may be written relative to the for variable: $v/path. *)
    let key =
      if peek st = Some '$' then begin
        let v = parse_var st in
        if v <> for_var then
          fail st (Printf.sprintf "order key must use the for variable $%s" for_var);
        if peek st = Some '/' then begin
          advance st 1;
          as_relative (parse_path st ~stop_words:clause_words)
        end
        else Xpath.Ast.self_path
      end
      else as_relative (parse_path st ~stop_words:clause_words)
    in
    skip_spaces st;
    let descending =
      if at_keyword st "descending" then begin
        advance st 10;
        true
      end
      else false
    in
    order_by := Some { Ast.key; descending }
  end;
  expect_keyword st "return";
  let return = parse_item st ~default_var:for_var in
  skip_spaces st;
  if st.pos <> String.length input then fail st "trailing input after return clause";
  { Ast.for_var;
    source;
    lets = List.rev !lets;
    where = List.rev !where;
    order_by = !order_by;
    return }
