(** Parser for the FLWOR surface syntax of {!Ast}.

    {v
      query    ::= 'for' '$'NAME 'in' xpath
                   [ 'let' '$'NAME ':=' relpath ] ...
                   [ 'where' cond [ 'and' cond ] ... ]
                   [ 'order' 'by' relpath [ 'descending' ] ]
                   'return' template
      cond     ::= ( '$'NAME [ '/' relpath ] | relpath ) op literal
      template ::= '<'TAG'>' body... '</'TAG'>'
                 | '{' '$'NAME [ '/' relpath ] '}'
      body     ::= template | text
    v} *)

exception Parse_error of { position : int; message : string }

val parse : string -> Ast.t
(** @raise Parse_error on malformed input. *)
