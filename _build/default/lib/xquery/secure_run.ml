module Doc = Xmlcore.Doc

let evaluate system (q : Ast.t) =
  let server_query = Eval.pushdown q in
  let bindings, cost = Secure.System.evaluate system server_query in
  (* Each answer is one binding's subtree; re-index it and run the
     remaining clauses from its root. *)
  let rows =
    List.map
      (fun tree ->
        let doc = Doc.of_tree tree in
        let root = Doc.root doc in
        Eval.order_key doc root q, Eval.eval_in_binding doc root q)
      bindings
  in
  List.concat_map snd (Eval.sort_rows q rows), cost

let reference system q = Eval.eval (Secure.System.doc system) q
