module Doc = Xmlcore.Doc
module Tree = Xmlcore.Tree
module X = Xpath.Ast

let lookup env var =
  match List.assoc_opt var env with
  | Some nodes -> nodes
  | None -> invalid_arg (Printf.sprintf "Xquery: unbound variable $%s" var)

let environment doc binding (q : Ast.t) =
  let base = [ q.Ast.for_var, [ binding ] ] in
  List.fold_left
    (fun env (v, path) ->
      let bound = Xpath.Eval.eval_from doc (lookup env q.Ast.for_var) path in
      (v, bound) :: env)
    base q.Ast.lets

let condition_holds doc env (q : Ast.t) (c : Ast.condition) =
  let subject_nodes =
    match c.Ast.subject with
    | None -> lookup env q.Ast.for_var
    | Some v -> lookup env v
  in
  let targets =
    if c.Ast.path.X.steps = [] then subject_nodes
    else Xpath.Eval.eval_from doc subject_nodes c.Ast.path
  in
  List.exists
    (fun n ->
      match Doc.value doc n with
      | Some v -> Xpath.Eval.compare_values v c.Ast.op c.Ast.literal
      | None -> false)
    targets

let rec instantiate doc env (item : Ast.item) : Tree.t list =
  match item with
  | Ast.Text s -> [ Tree.Text s ]
  | Ast.Splice { var; steps } ->
    let nodes = lookup env var in
    let nodes =
      match steps with
      | None -> nodes
      | Some p -> Xpath.Eval.eval_from doc nodes p
    in
    List.map (Doc.subtree doc) nodes
  | Ast.Elem (tag, items) ->
    [ Tree.element tag (List.concat_map (instantiate doc env) items) ]

(* First text value at or below a node (for order keys). *)
let rec value_of doc n =
  match Doc.value doc n with
  | Some v -> Some v
  | None ->
    List.fold_left
      (fun acc c -> match acc with Some _ -> acc | None -> value_of doc c)
      None (Doc.children doc n)

let order_key doc binding (q : Ast.t) =
  match q.Ast.order_by with
  | None -> None
  | Some { key; _ } ->
    let nodes =
      if key.X.steps = [] then [ binding ]
      else Xpath.Eval.eval_from doc [ binding ] key
    in
    List.fold_left
      (fun acc n -> match acc with Some _ -> acc | None -> value_of doc n)
      None nodes

let eval_in_binding doc binding (q : Ast.t) =
  let env = environment doc binding q in
  if List.for_all (condition_holds doc env q) q.Ast.where then
    instantiate doc env q.Ast.return
  else []

let key_compare a b =
  match float_of_string_opt a, float_of_string_opt b with
  | Some x, Some y -> Float.compare x y
  | Some _, None | None, Some _ | None, None -> String.compare a b

(* Sort (key, fragments) rows; keyless rows sink to the end. *)
let sort_rows (q : Ast.t) rows =
  match q.Ast.order_by with
  | None -> rows
  | Some { descending; _ } ->
    let compare_rows (ka, _) (kb, _) =
      match ka, kb with
      | Some a, Some b -> if descending then key_compare b a else key_compare a b
      | Some _, None -> -1
      | None, Some _ -> 1
      | None, None -> 0
    in
    List.stable_sort compare_rows rows

let eval doc (q : Ast.t) =
  let bindings = Xpath.Eval.eval doc q.Ast.source in
  let rows =
    List.map (fun b -> order_key doc b q, eval_in_binding doc b q) bindings
  in
  List.concat_map snd (sort_rows q rows)

let pushdown (q : Ast.t) =
  (* Conditions over the for variable become comparison predicates on
     the source's last step. *)
  let pushable, _rest =
    List.partition
      (fun (c : Ast.condition) ->
        match c.Ast.subject with
        | None -> true
        | Some v -> String.equal v q.Ast.for_var)
      q.Ast.where
  in
  match List.rev q.Ast.source.X.steps with
  | [] -> q.Ast.source
  | last :: before ->
    let extra =
      List.map
        (fun (c : Ast.condition) -> X.Compare (c.Ast.path, c.Ast.op, c.Ast.literal))
        pushable
    in
    let last = { last with X.predicates = last.X.predicates @ extra } in
    { q.Ast.source with X.steps = List.rev (last :: before) }
