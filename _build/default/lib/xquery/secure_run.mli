(** FLWOR over the hosted protocol.

    The [for] path plus every pushable [where] condition go to the
    server as one translated XPath query; every returned binding
    subtree is re-indexed client-side and the full FLWOR semantics
    (lets, residual conditions, ordering, templates) run inside it.
    Because every clause path is relative, the result equals
    {!Eval.eval} on the plaintext document — tested across schemes. *)

val evaluate :
  Secure.System.t -> Ast.t -> Xmlcore.Tree.t list * Secure.System.cost
(** Answers plus the protocol cost of the underlying XPath round
    trip. *)

val reference : Secure.System.t -> Ast.t -> Xmlcore.Tree.t list
(** {!Eval.eval} on the plaintext document (ground truth). *)
