(** FLWOR evaluation.

    {!eval} is the plaintext reference semantics.  {!Secure_run.evaluate}
    (in this library) runs the same query through the hosted protocol:
    the [for] path and every pushable [where] condition are folded into
    one XPath query for the server ({!pushdown}), and the FLWOR clauses
    are then re-evaluated client-side inside each returned binding —
    sound because all clause paths are relative (navigate downward from
    their binding). *)

val eval : Xmlcore.Doc.t -> Ast.t -> Xmlcore.Tree.t list
(** Reference semantics over a plaintext document: one result fragment
    list, bindings in document order (or [order by] order). *)

val pushdown : Ast.t -> Xpath.Ast.path
(** The [for] source with every condition on the [for] variable turned
    into an XPath comparison predicate.  Conditions over [let]
    variables stay client-side. *)

val eval_in_binding : Xmlcore.Doc.t -> Xmlcore.Doc.node -> Ast.t -> Xmlcore.Tree.t list
(** Evaluate the let/where/return clauses for one binding node
    (used both by {!eval} and by the secure path, where the binding is
    the root of a reconstructed answer document).  Returns the
    instantiated fragments ([] when [where] fails). *)

val order_key : Xmlcore.Doc.t -> Xmlcore.Doc.node -> Ast.t -> string option
(** The binding's [order by] key value, if any. *)

val sort_rows :
  Ast.t -> (string option * 'a) list -> (string option * 'a) list
(** Stable [order by] sort of (key, row) pairs — numeric-aware, keyless
    rows last; identity when the query has no [order by]. *)
