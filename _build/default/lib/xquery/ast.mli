(** FLWOR expressions — a compact XQuery core on top of the XPath
    fragment (the paper uses "XPath, the core of XQuery"; this layer
    restores the rest of the query surface a client application would
    write).

    {v
      for $p in //patient
      let $ins := .//insurance
      where $p/age >= 40 and .//disease = 'flu'
      order by $p/age descending
      return <row>{$p/pname}{$ins//@coverage}</row>
    v}

    Restrictions (checked at evaluation time): [let], [where] and
    [return] paths are {e relative} — they navigate downward from their
    binding, so a secure evaluation can run them inside returned
    blocks. *)

type expr = {
  var : string;                     (** without the [$] *)
  steps : Xpath.Ast.path option;    (** [None] = the variable itself *)
}

type item =
  | Text of string
  | Splice of expr                  (** [{$v}] or [{$v/path}] *)
  | Elem of string * item list      (** element constructor *)

type condition = {
  subject : string option;  (** [None] = the [for] variable *)
  path : Xpath.Ast.path;    (** relative; empty = the binding itself *)
  op : Xpath.Ast.op;
  literal : string;
}

type order = {
  key : Xpath.Ast.path;     (** relative to the [for] binding *)
  descending : bool;
}

type t = {
  for_var : string;
  source : Xpath.Ast.path;
  lets : (string * Xpath.Ast.path) list;
  where : condition list;   (** conjunction *)
  order_by : order option;
  return : item;
}

val to_string : t -> string
(** Render back to surface syntax. *)

val pp : Format.formatter -> t -> unit
