type expr = {
  var : string;
  steps : Xpath.Ast.path option;
}

type item =
  | Text of string
  | Splice of expr
  | Elem of string * item list

type condition = {
  subject : string option;
  path : Xpath.Ast.path;
  op : Xpath.Ast.op;
  literal : string;
}

type order = {
  key : Xpath.Ast.path;
  descending : bool;
}

type t = {
  for_var : string;
  source : Xpath.Ast.path;
  lets : (string * Xpath.Ast.path) list;
  where : condition list;
  order_by : order option;
  return : item;
}

let expr_to_string e =
  match e.steps with
  | None -> "$" ^ e.var
  | Some p -> Printf.sprintf "$%s/%s" e.var (Xpath.Ast.to_string p)

let rec item_to_buffer out = function
  | Text s -> Buffer.add_string out s
  | Splice e ->
    Buffer.add_char out '{';
    Buffer.add_string out (expr_to_string e);
    Buffer.add_char out '}'
  | Elem (tag, items) ->
    Buffer.add_char out '<';
    Buffer.add_string out tag;
    Buffer.add_char out '>';
    List.iter (item_to_buffer out) items;
    Buffer.add_string out "</";
    Buffer.add_string out tag;
    Buffer.add_char out '>'

let condition_to_string c =
  let subject =
    match c.subject with
    | Some v when c.path.Xpath.Ast.steps = [] -> "$" ^ v
    | Some v -> Printf.sprintf "$%s/%s" v (Xpath.Ast.to_string c.path)
    | None -> Xpath.Ast.to_string c.path
  in
  Printf.sprintf "%s %s '%s'" subject (Xpath.Ast.op_to_string c.op) c.literal

let to_string t =
  let out = Buffer.create 128 in
  Buffer.add_string out
    (Printf.sprintf "for $%s in %s" t.for_var (Xpath.Ast.to_string t.source));
  List.iter
    (fun (v, p) ->
      Buffer.add_string out
        (Printf.sprintf " let $%s := %s" v (Xpath.Ast.to_string p)))
    t.lets;
  (match t.where with
   | [] -> ()
   | conds ->
     Buffer.add_string out " where ";
     Buffer.add_string out (String.concat " and " (List.map condition_to_string conds)));
  (match t.order_by with
   | None -> ()
   | Some { key; descending } ->
     Buffer.add_string out
       (Printf.sprintf " order by %s%s" (Xpath.Ast.to_string key)
          (if descending then " descending" else "")));
  Buffer.add_string out " return ";
  item_to_buffer out t.return;
  Buffer.contents out

let pp fmt t = Format.pp_print_string fmt (to_string t)
