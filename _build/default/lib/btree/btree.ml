type 'a node = {
  mutable keys : int64 array;
  mutable payloads : 'a array;
  mutable children : 'a node array;  (* empty for leaves *)
  mutable n : int;                   (* live keys *)
}

type 'a t = {
  min_degree : int;
  mutable root : 'a node;
  mutable size : int;
}

let max_keys t = (2 * t.min_degree) - 1

let leaf_node () = { keys = [||]; payloads = [||]; children = [||]; n = 0 }

let is_leaf node = Array.length node.children = 0

let create ?(min_degree = 16) () =
  if min_degree < 2 then invalid_arg "Btree.create: min_degree must be >= 2";
  { min_degree; root = leaf_node (); size = 0 }

let length t = t.size

(* Grow the key/payload arrays of [node] to capacity [cap] (children too
   when the node is internal). *)
let ensure_capacity ~internal node cap =
  if Array.length node.keys < cap then begin
    let keys = Array.make cap 0L in
    Array.blit node.keys 0 keys 0 node.n;
    node.keys <- keys;
    let payloads =
      if node.n = 0 then [||]
      else begin
        let p = Array.make cap node.payloads.(0) in
        Array.blit node.payloads 0 p 0 node.n;
        p
      end
    in
    node.payloads <- payloads;
    if internal && Array.length node.children < cap + 1 && node.n > 0 then begin
      let children = Array.make (cap + 1) node.children.(0) in
      Array.blit node.children 0 children 0 (node.n + 1);
      node.children <- children
    end
  end

(* Make room for payloads when the node was empty ([payloads] can't be
   pre-sized without a dummy element). *)
let set_entry node i key payload =
  if Array.length node.payloads <= i then begin
    let cap = max (i + 1) (Array.length node.keys) in
    let p = Array.make cap payload in
    Array.blit node.payloads 0 p 0 node.n;
    node.payloads <- p
  end;
  node.keys.(i) <- key;
  node.payloads.(i) <- payload

(* Split the full child [child] of [parent] at child index [i]. *)
let split_child t parent i child =
  let td = t.min_degree in
  let right = leaf_node () in
  right.keys <- Array.make (max_keys t) 0L;
  right.n <- td - 1;
  Array.blit child.keys td right.keys 0 (td - 1);
  right.payloads <- Array.sub child.payloads td (td - 1);
  (* Restore right.payloads capacity. *)
  (let cap = max_keys t in
   if right.n > 0 && Array.length right.payloads < cap then begin
     let p = Array.make cap right.payloads.(0) in
     Array.blit right.payloads 0 p 0 right.n;
     right.payloads <- p
   end);
  if not (is_leaf child) then begin
    right.children <- Array.make (max_keys t + 1) child.children.(0);
    Array.blit child.children td right.children 0 td
  end;
  let median_key = child.keys.(td - 1) in
  let median_payload = child.payloads.(td - 1) in
  child.n <- td - 1;
  (* Shift parent's entries and children right to open slot [i]. *)
  ensure_capacity ~internal:true parent (max_keys t);
  if Array.length parent.children < max_keys t + 1 then begin
    let children = Array.make (max_keys t + 1) parent.children.(0) in
    Array.blit parent.children 0 children 0 (parent.n + 1);
    parent.children <- children
  end;
  for j = parent.n downto i + 1 do
    parent.keys.(j) <- parent.keys.(j - 1)
  done;
  (if parent.n > 0 then
     for j = parent.n downto i + 1 do
       parent.payloads.(j) <- parent.payloads.(j - 1)
     done);
  for j = parent.n + 1 downto i + 2 do
    parent.children.(j) <- parent.children.(j - 1)
  done;
  parent.children.(i + 1) <- right;
  set_entry parent i median_key median_payload;
  parent.n <- parent.n + 1

let rec insert_nonfull t node key payload =
  if is_leaf node then begin
    ensure_capacity ~internal:false node (max_keys t);
    (* Insert after any equal keys to keep insertion order stable. *)
    let i = ref (node.n - 1) in
    while !i >= 0 && node.keys.(!i) > key do
      node.keys.(!i + 1) <- node.keys.(!i);
      node.payloads.(!i + 1) <- node.payloads.(!i);
      decr i
    done;
    set_entry node (!i + 1) key payload;
    node.n <- node.n + 1
  end
  else begin
    let i = ref (node.n - 1) in
    while !i >= 0 && node.keys.(!i) > key do
      decr i
    done;
    let child_index = !i + 1 in
    let child = node.children.(child_index) in
    if child.n = max_keys t then begin
      split_child t node child_index child;
      let child_index = if key >= node.keys.(child_index) then child_index + 1 else child_index in
      insert_nonfull t node.children.(child_index) key payload
    end
    else insert_nonfull t child key payload
  end

let insert t key payload =
  let root = t.root in
  if root.n = max_keys t then begin
    let new_root = leaf_node () in
    new_root.keys <- Array.make (max_keys t) 0L;
    new_root.children <- Array.make (max_keys t + 1) root;
    new_root.children.(0) <- root;
    t.root <- new_root;
    split_child t new_root 0 root;
    insert_nonfull t new_root key payload
  end
  else insert_nonfull t root key payload;
  t.size <- t.size + 1

(* ------------------------------------------------------------------ *)
(* Bulk loading (bottom-up packing of sorted entries)                  *)

let node_of_entries t entries =
  let node = leaf_node () in
  ensure_capacity ~internal:false node (max_keys t);
  List.iteri (fun i (k, v) -> set_entry node i k v) entries;
  node.n <- List.length entries;
  node

(* Split [n] items into [parts] contiguous groups as evenly as
   possible; returns the group sizes. *)
let even_groups n parts =
  let base = n / parts and rem = n mod parts in
  List.init parts (fun i -> base + if i < rem then 1 else 0)

let bulk_load ?(min_degree = 16) entries =
  let t = create ~min_degree () in
  let td = min_degree in
  let cap = max_keys t in
  let sorted = List.stable_sort (fun (a, _) (b, _) -> compare a b) entries in
  let n = List.length sorted in
  if n = 0 then t
  else begin
    let take k list =
      let rec go k acc = function
        | rest when k = 0 -> List.rev acc, rest
        | x :: rest -> go (k - 1) (x :: acc) rest
        | [] -> List.rev acc, []
      in
      go k [] list
    in
    (* Leaf level: k leaves of td-1..cap entries each, separated by
       k-1 entries that move up. *)
    let leaf_count =
      (* Find the smallest k with even leaf sizes within bounds. *)
      let rec search k =
        let per_leaf_min = (n - k + 1) / k in
        let per_leaf_max = per_leaf_min + (if (n - k + 1) mod k = 0 then 0 else 1) in
        if per_leaf_max <= cap && per_leaf_min >= td - 1 then k
        else if per_leaf_max > cap then search (k + 1)
        else (* leaves would underfill: fewer leaves *)
          max 1 (k - 1)
      in
      if n <= cap then 1 else search (max 1 ((n + cap) / (cap + 1)))
    in
    let sizes = even_groups (n - leaf_count + 1) leaf_count in
    let rec build_leaves sizes entries nodes seps =
      match sizes with
      | [] -> List.rev nodes, List.rev seps
      | size :: rest ->
        let chunk, remaining = take size entries in
        let node = node_of_entries t chunk in
        (match rest, remaining with
         | _ :: _, sep :: after -> build_leaves rest after (node :: nodes) (sep :: seps)
         | _, _ -> build_leaves rest remaining (node :: nodes) seps)
    in
    let leaves, seps = build_leaves sizes sorted [] [] in
    (* Upper levels: group children td..2td per parent, promoting one
       separator between adjacent groups. *)
    let rec build_level children seps =
      match children with
      | [ root ] -> root
      | _ ->
        let k = List.length children in
        let parents = (k + (2 * td) - 1) / (2 * td) in
        let group_sizes = even_groups k parents in
        let rec make groups children seps parents_acc up_seps =
          match groups with
          | [] -> List.rev parents_acc, List.rev up_seps
          | g :: rest ->
            let kids, children = take g children in
            let inner, seps = take (g - 1) seps in
            let parent = leaf_node () in
            ensure_capacity ~internal:false parent cap;
            List.iteri (fun i (key, v) -> set_entry parent i key v) inner;
            parent.n <- g - 1;
            parent.children <- Array.make (cap + 1) (List.hd kids);
            List.iteri (fun i kid -> parent.children.(i) <- kid) kids;
            (match rest, seps with
             | _ :: _, up :: seps ->
               make rest children seps (parent :: parents_acc) (up :: up_seps)
             | _, _ -> make rest children seps (parent :: parents_acc) up_seps)
        in
        let parents, up = make group_sizes children seps [] [] in
        build_level parents up
    in
    t.root <- build_level leaves seps;
    t.size <- n;
    t
  end

(* ------------------------------------------------------------------ *)
(* Deletion (single-pass with preemptive borrow/merge)                 *)

(* Remove the entry at index [i] of a leaf. *)
let leaf_remove node i =
  for j = i to node.n - 2 do
    node.keys.(j) <- node.keys.(j + 1);
    node.payloads.(j) <- node.payloads.(j + 1)
  done;
  node.n <- node.n - 1

(* Move the last entry of [left] up to [parent].(i) and the old
   separator down into [right] (right rotation through the parent). *)
let borrow_from_left t parent i left right =
  ensure_capacity ~internal:(not (is_leaf right)) right (max_keys t);
  for j = right.n downto 1 do
    right.keys.(j) <- right.keys.(j - 1)
  done;
  (if right.n > 0 then
     for j = right.n downto 1 do
       right.payloads.(j) <- right.payloads.(j - 1)
     done);
  set_entry right 0 parent.keys.(i) parent.payloads.(i);
  if not (is_leaf right) then begin
    for j = right.n + 1 downto 1 do
      right.children.(j) <- right.children.(j - 1)
    done;
    right.children.(0) <- left.children.(left.n)
  end;
  right.n <- right.n + 1;
  set_entry parent i left.keys.(left.n - 1) left.payloads.(left.n - 1);
  left.n <- left.n - 1

(* Mirror image: first entry of [right] up, separator down into [left]. *)
let borrow_from_right t parent i left right =
  ensure_capacity ~internal:(not (is_leaf left)) left (max_keys t);
  set_entry left left.n parent.keys.(i) parent.payloads.(i);
  if not (is_leaf left) then left.children.(left.n + 1) <- right.children.(0);
  left.n <- left.n + 1;
  set_entry parent i right.keys.(0) right.payloads.(0);
  for j = 0 to right.n - 2 do
    right.keys.(j) <- right.keys.(j + 1);
    right.payloads.(j) <- right.payloads.(j + 1)
  done;
  if not (is_leaf right) then
    for j = 0 to right.n - 1 do
      right.children.(j) <- right.children.(j + 1)
    done;
  right.n <- right.n - 1

(* Merge parent separator [i] and child [i+1] into child [i]; the
   parent loses one key and one child. *)
let merge_children t parent i =
  let left = parent.children.(i) and right = parent.children.(i + 1) in
  ensure_capacity ~internal:(not (is_leaf left)) left (max_keys t);
  set_entry left left.n parent.keys.(i) parent.payloads.(i);
  for j = 0 to right.n - 1 do
    set_entry left (left.n + 1 + j) right.keys.(j) right.payloads.(j)
  done;
  if not (is_leaf left) then begin
    if Array.length left.children < max_keys t + 1 then begin
      let grown = Array.make (max_keys t + 1) left.children.(0) in
      Array.blit left.children 0 grown 0 (left.n + 1);
      left.children <- grown
    end;
    for j = 0 to right.n do
      left.children.(left.n + 1 + j) <- right.children.(j)
    done
  end;
  left.n <- left.n + right.n + 1;
  for j = i to parent.n - 2 do
    parent.keys.(j) <- parent.keys.(j + 1);
    parent.payloads.(j) <- parent.payloads.(j + 1)
  done;
  for j = i + 1 to parent.n - 1 do
    parent.children.(j) <- parent.children.(j + 1)
  done;
  parent.n <- parent.n - 1

(* Guarantee child [i] of [parent] has at least [t.min_degree] keys
   before descending.  Returns the (possibly shifted) child index. *)
let fill_child t parent i =
  let td = t.min_degree in
  let child = parent.children.(i) in
  if child.n >= td then i
  else if i > 0 && parent.children.(i - 1).n >= td then begin
    borrow_from_left t parent (i - 1) parent.children.(i - 1) child;
    i
  end
  else if i < parent.n && parent.children.(i + 1).n >= td then begin
    borrow_from_right t parent i child parent.children.(i + 1);
    i
  end
  else if i > 0 then begin
    merge_children t parent (i - 1);
    i - 1
  end
  else begin
    merge_children t parent i;
    i
  end

(* Extract the maximum/minimum entry of a subtree, filling children on
   the way down so no node drops below t keys. *)
let rec pop_max_filled t node =
  if is_leaf node then begin
    let entry = node.keys.(node.n - 1), node.payloads.(node.n - 1) in
    node.n <- node.n - 1;
    entry
  end
  else begin
    ignore (fill_child t node node.n);
    (* After any borrow/merge the rightmost child is at index node.n. *)
    pop_max_filled t node.children.(node.n)
  end

let rec pop_min_filled t node =
  if is_leaf node then begin
    let entry = node.keys.(0), node.payloads.(0) in
    leaf_remove node 0;
    entry
  end
  else begin
    ignore (fill_child t node 0);
    pop_min_filled t node.children.(0)
  end

(* Remove the separator at index [i] of an internal node: replace it
   with the predecessor or successor entry, or merge and recurse on the
   separator's exact landing position (index td-1 of the merged child) —
   position-exact so duplicates are never confused. *)
let rec delete_separator t node i =
  let td = t.min_degree in
  let left = node.children.(i) and right = node.children.(i + 1) in
  if left.n >= td then begin
    let pk, pv = pop_max_filled t left in
    set_entry node i pk pv
  end
  else if right.n >= td then begin
    let sk, sv = pop_min_filled t right in
    set_entry node i sk sv
  end
  else begin
    merge_children t node i;
    let merged = node.children.(i) in
    if is_leaf merged then leaf_remove merged (td - 1)
    else delete_separator t merged (td - 1)
  end

(* [delete_in t node k matching]: remove the first (in-order) matching
   entry in the subtree. *)
let rec delete_in t node k matching =
  if is_leaf node then begin
    let rec scan i =
      if i >= node.n || node.keys.(i) > k then false
      else if node.keys.(i) = k && matching node.payloads.(i) then begin
        leaf_remove node i;
        true
      end
      else scan (i + 1)
    in
    scan 0
  end
  else begin
    (* In-order positions child 0, key 0, child 1, key 1, ...: visit
       children whose key range can hold [k], interleaved with
       separator checks, left to right. *)
    let rec visit i =
      if i > node.n then false
      else begin
        let child_may_hold =
          (i = 0 || node.keys.(i - 1) <= k) && (i = node.n || node.keys.(i) >= k)
        in
        if child_may_hold then begin
          let i = fill_child t node i in
          if delete_in t node.children.(i) k matching then true else separator i
        end
        else separator i
      end
    and separator i =
      if i >= node.n || node.keys.(i) > k then false
      else if node.keys.(i) = k && matching node.payloads.(i) then begin
        delete_separator t node i;
        true
      end
      else visit (i + 1)
    in
    visit 0
  end

let delete t k matching =
  let found = delete_in t t.root k matching in
  (* Shrink the root when it lost its last key. *)
  if t.root.n = 0 && not (is_leaf t.root) then t.root <- t.root.children.(0);
  if found then t.size <- t.size - 1;
  found

let delete_all t k matching =
  let removed = ref 0 in
  while delete t k matching do
    incr removed
  done;
  !removed

let height t =
  let rec go node = if is_leaf node then 1 else 1 + go node.children.(0) in
  go t.root

let node_count t =
  let rec go node =
    if is_leaf node then 1
    else begin
      let acc = ref 1 in
      for i = 0 to node.n do
        acc := !acc + go node.children.(i)
      done;
      !acc
    end
  in
  go t.root

let iter t f =
  let rec go node =
    if is_leaf node then
      for i = 0 to node.n - 1 do
        f node.keys.(i) node.payloads.(i)
      done
    else begin
      for i = 0 to node.n - 1 do
        go node.children.(i);
        f node.keys.(i) node.payloads.(i)
      done;
      go node.children.(node.n)
    end
  in
  go t.root

let to_list t =
  let acc = ref [] in
  iter t (fun k v -> acc := (k, v) :: !acc);
  List.rev !acc

let range t ~lo ~hi =
  let acc = ref [] in
  let rec go node =
    if is_leaf node then
      for i = 0 to node.n - 1 do
        let k = node.keys.(i) in
        if k >= lo && k <= hi then acc := (k, node.payloads.(i)) :: !acc
      done
    else
      for i = 0 to node.n do
        (* Visit child i when its key window [prev_key, key_i] overlaps. *)
        let lower_ok = i = 0 || node.keys.(i - 1) <= hi in
        let upper_ok = i = node.n || node.keys.(i) >= lo in
        if lower_ok && upper_ok then go node.children.(i);
        if i < node.n then begin
          let k = node.keys.(i) in
          if k >= lo && k <= hi then acc := (k, node.payloads.(i)) :: !acc
        end
      done
  in
  go t.root;
  List.rev !acc

let find_all t key = List.map snd (range t ~lo:key ~hi:key)

let min_key t =
  let rec go node =
    if node.n = 0 then None
    else if is_leaf node then Some node.keys.(0)
    else go node.children.(0)
  in
  go t.root

let max_key t =
  let rec go node =
    if node.n = 0 then None
    else if is_leaf node then Some node.keys.(node.n - 1)
    else go node.children.(node.n)
  in
  go t.root

let validate t =
  let exception Bad of string in
  let td = t.min_degree in
  let leaf_depths = ref [] in
  let rec go node ~depth ~is_root ~lo ~hi =
    if not is_root && node.n < td - 1 then
      raise (Bad (Printf.sprintf "underfull node: %d keys (min %d)" node.n (td - 1)));
    if node.n > max_keys t then raise (Bad "overfull node");
    for i = 0 to node.n - 1 do
      let k = node.keys.(i) in
      if i > 0 && node.keys.(i - 1) > k then raise (Bad "keys out of order within a node");
      (match lo with Some l when k < l -> raise (Bad "key below subtree bound") | _ -> ());
      (match hi with Some h when k > h -> raise (Bad "key above subtree bound") | _ -> ())
    done;
    if is_leaf node then leaf_depths := depth :: !leaf_depths
    else begin
      if node.n = 0 then raise (Bad "internal node with no keys");
      for i = 0 to node.n do
        let child_lo = if i = 0 then lo else Some node.keys.(i - 1) in
        let child_hi = if i = node.n then hi else Some node.keys.(i) in
        go node.children.(i) ~depth:(depth + 1) ~is_root:false ~lo:child_lo ~hi:child_hi
      done
    end
  in
  match go t.root ~depth:0 ~is_root:true ~lo:None ~hi:None with
  | () ->
    (match !leaf_depths with
     | [] -> Ok ()
     | d :: rest ->
       if List.for_all (fun d' -> d' = d) rest then Ok ()
       else Error "leaves at different depths")
  | exception Bad msg -> Error msg
