(** In-memory B-tree with [int64] keys and arbitrary payloads.

    This is the server-side value index of Section 5.2: data entries are
    [(evalue, Bid)] pairs mapping OPESS ciphertext values to encrypted
    block ids.  Because OPESS {e splits} plaintext values, equality
    predicates become range scans here, so the range query is the
    central operation.

    Classic CLRS B-tree: every node except the root holds between
    [t-1] and [2t-1] keys; duplicate keys are allowed (entries with
    equal keys are kept in insertion order). *)

type 'a t

val create : ?min_degree:int -> unit -> 'a t
(** [create ~min_degree ()] makes an empty tree.  [min_degree] is the
    CLRS parameter [t >= 2]; default 16 (nodes hold up to 31 keys). *)

val insert : 'a t -> int64 -> 'a -> unit
(** [insert t key payload] adds an entry.  Duplicates allowed. *)

val bulk_load : ?min_degree:int -> (int64 * 'a) list -> 'a t
(** Build a tree from entries in one pass: the entries are sorted
    (stably, so duplicate order is preserved) and packed bottom-up into
    maximally filled nodes.  Equivalent to repeated {!insert} for every
    query operation, several times faster for index construction. *)

val delete : 'a t -> int64 -> ('a -> bool) -> bool
(** [delete t key matching] removes the first entry (in key order,
    insertion order among duplicates) whose key is [key] and whose
    payload satisfies [matching]; returns whether an entry was removed.
    Rebalances with the standard borrow/merge rules, so all invariants
    checked by {!validate} are preserved. *)

val delete_all : 'a t -> int64 -> ('a -> bool) -> int
(** Remove every matching entry; returns how many were removed. *)

val length : 'a t -> int
(** Number of entries. *)

val height : 'a t -> int
(** Height in levels; the empty tree has height 1 (an empty leaf). *)

val node_count : 'a t -> int
(** Number of B-tree nodes (for index-size accounting). *)

val range : 'a t -> lo:int64 -> hi:int64 -> (int64 * 'a) list
(** [range t ~lo ~hi] returns the entries with [lo <= key <= hi] in key
    order (insertion order among equal keys). *)

val find_all : 'a t -> int64 -> 'a list
(** [find_all t key] = payloads of entries with exactly [key]. *)

val iter : 'a t -> (int64 -> 'a -> unit) -> unit
(** In-order iteration over all entries. *)

val to_list : 'a t -> (int64 * 'a) list
(** All entries in key order. *)

val min_key : 'a t -> int64 option
val max_key : 'a t -> int64 option

val validate : 'a t -> (unit, string) result
(** Checks the B-tree invariants (key ordering, fill factors, uniform
    leaf depth).  Used by the property tests. *)
