module Doc = Xmlcore.Doc
module Interval = Dsi.Interval

exception Corrupt of string

let magic = "SXQHOST1"

(* Primitive codecs live in Codec; readers raise Codec.Error, mapped
   to Corrupt at this module's boundary. *)
module W = Codec.W

module R = struct
  include Codec.R
end

(* ------------------------------------------------------------------ *)
(* Section codecs                                                      *)

let w_interval b (iv : Interval.t) =
  W.float b iv.Interval.lo;
  W.float b iv.Interval.hi

let r_interval r =
  let lo = R.float r in
  let hi = R.float r in
  (try Interval.make lo hi with Invalid_argument m -> raise (Corrupt m))

let w_block b (blk : Encrypt.block) =
  W.int b blk.Encrypt.id;
  W.int b blk.Encrypt.root;
  W.string b blk.Encrypt.ciphertext;
  W.int b blk.Encrypt.plaintext_bytes;
  W.int b blk.Encrypt.node_count;
  W.bool b blk.Encrypt.has_decoy

let r_block r =
  let id = R.int r in
  let root = R.int r in
  let ciphertext = R.string r in
  let plaintext_bytes = R.int r in
  let node_count = R.int r in
  let has_decoy = R.bool r in
  { Encrypt.id; root; ciphertext; plaintext_bytes; node_count; has_decoy }

let w_target b = function
  | Metadata.To_block id ->
    W.bool b true;
    W.int b id
  | Metadata.To_plain iv ->
    W.bool b false;
    w_interval b iv

let r_target r =
  if R.bool r then Metadata.To_block (R.int r) else Metadata.To_plain (r_interval r)

let w_chunk b (c : Opess.chunk) =
  W.i64 b c.Opess.cipher;
  W.int b c.Opess.occurrences

let r_chunk r =
  let cipher = R.i64 r in
  let occurrences = R.int r in
  { Opess.cipher; occurrences }

let w_entry b (e : Opess.value_entry) =
  W.string b e.Opess.value;
  W.float b e.Opess.numeric;
  W.int b e.Opess.count;
  W.list b w_chunk e.Opess.chunks;
  W.int b e.Opess.scale

let r_entry r =
  let value = R.string r in
  let numeric = R.float r in
  let count = R.int r in
  let chunks = R.list r r_chunk in
  let scale = R.int r in
  { Opess.value; numeric; count; chunks; scale }

let w_catalog b (tag, cat) =
  W.string b tag;
  W.int b (Opess.attr_id cat);
  W.int b (Opess.chunk_parameter cat);
  W.int b (Opess.key_count cat);
  W.list b w_entry (Opess.entries cat)

let r_catalog r =
  let tag = R.string r in
  let attr_id = R.int r in
  let m = R.int r in
  let num_keys = R.int r in
  let entries = R.list r r_entry in
  tag, Opess.of_parts ~tag ~attr_id ~m ~num_keys entries

let kind_to_int = function
  | Scheme.Opt -> 0
  | Scheme.App -> 1
  | Scheme.Sub -> 2
  | Scheme.Top -> 3

let kind_of_int = function
  | 0 -> Scheme.Opt
  | 1 -> Scheme.App
  | 2 -> Scheme.Sub
  | 3 -> Scheme.Top
  | n -> raise (Corrupt (Printf.sprintf "unknown scheme kind %d" n))

(* ------------------------------------------------------------------ *)
(* Whole-bundle codec                                                  *)

let encode_body system =
  let b = Buffer.create 65_536 in
  let doc = System.doc system in
  let scheme = System.scheme system in
  let db = System.db system in
  let meta = System.metadata system in
  W.string b (Crypto.Cipher.suite_to_string (System.cipher system));
  W.string b (Xmlcore.Printer.doc_to_string doc);
  W.list b (fun b sc -> W.string b (Sc.to_string sc)) (System.constraints system);
  W.int b (kind_to_int scheme.Scheme.kind);
  W.list b W.int scheme.Scheme.block_roots;
  W.list b W.string scheme.Scheme.covered_tags;
  W.list b w_block db.Encrypt.blocks;
  W.string b (Xmlcore.Printer.tree_to_string db.Encrypt.skeleton);
  W.list b W.string db.Encrypt.encrypted_tags;
  W.list b W.string db.Encrypt.plaintext_tags;
  W.list b
    (fun b (key, ivs) ->
      W.string b key;
      W.list b w_interval ivs)
    meta.Metadata.dsi_table;
  W.list b
    (fun b (id, iv) ->
      W.int b id;
      w_interval b iv)
    meta.Metadata.block_table;
  let entries = ref [] in
  Btree.iter meta.Metadata.btree (fun k v -> entries := (k, v) :: !entries);
  W.list b
    (fun b (k, v) ->
      W.i64 b k;
      w_target b v)
    (List.rev !entries);
  W.list b w_catalog meta.Metadata.catalogs;
  W.list b W.string meta.Metadata.indexed_tags;
  Buffer.contents b

let mac_key master =
  Crypto.Keys.derive (Crypto.Keys.create ~master ()) "persist-mac"

let to_string system =
  let body = encode_body system in
  let master = System.master system in
  let mac = Crypto.Hmac.mac ~key:(mac_key master) (magic ^ body) in
  magic ^ body ^ mac

let rec of_string ~master data =
  try of_string_exn ~master data with Codec.Error m -> raise (Corrupt m)

and of_string_exn ~master data =
  let magic_len = String.length magic in
  if String.length data < magic_len + 32 then raise (Corrupt "file too short");
  if String.sub data 0 magic_len <> magic then raise (Corrupt "bad magic");
  let mac = String.sub data (String.length data - 32) 32 in
  let payload = String.sub data 0 (String.length data - 32) in
  if Crypto.Hmac.mac ~key:(mac_key master) payload <> mac then
    raise (Corrupt "MAC check failed (tampered file or wrong master secret)");
  let r = R.make payload magic_len in
  let parse_or_corrupt what f x =
    try f x with
    | Corrupt _ as e -> raise e
    | Xmlcore.Parser.Parse_error _ | Xpath.Parser.Parse_error _
    | Invalid_argument _ ->
      raise (Corrupt ("malformed " ^ what))
  in
  let cipher =
    match Crypto.Cipher.suite_of_string (R.string r) with
    | Some s -> s
    | None -> raise (Corrupt "unknown cipher suite")
  in
  let doc = parse_or_corrupt "document" Xmlcore.Parser.parse_doc (R.string r) in
  let constraints =
    List.map (parse_or_corrupt "constraint" Sc.parse) (R.list r R.string)
  in
  let kind = kind_of_int (R.int r) in
  let block_roots = R.list r R.int in
  let covered_tags = R.list r R.string in
  let scheme = { Scheme.kind; block_roots; covered_tags } in
  let blocks = R.list r r_block in
  let skeleton = parse_or_corrupt "skeleton" Xmlcore.Parser.parse (R.string r) in
  let encrypted_tags = R.list r R.string in
  let plaintext_tags = R.list r R.string in
  let db =
    { Encrypt.doc; scheme; blocks; skeleton; encrypted_tags; plaintext_tags }
  in
  let dsi_table =
    R.list r (fun r ->
        let key = R.string r in
        let ivs = R.list r r_interval in
        key, ivs)
  in
  let block_table =
    R.list r (fun r ->
        let id = R.int r in
        let iv = r_interval r in
        id, iv)
  in
  let btree = Btree.create ~min_degree:16 () in
  let entries =
    R.list r (fun r ->
        let k = R.i64 r in
        let v = r_target r in
        k, v)
  in
  List.iter (fun (k, v) -> Btree.insert btree k v) entries;
  let catalogs = R.list r r_catalog in
  let indexed_tags = R.list r R.string in
  if r.R.pos <> String.length payload then raise (Corrupt "trailing bytes");
  (* The DSI assignment is deterministic in the master key: recompute
     rather than store. *)
  let keys = Crypto.Keys.create ~master () in
  let assignment = Dsi.Assign.assign ~key:(Crypto.Keys.dsi_key keys) doc in
  let metadata =
    { Metadata.assignment; dsi_table; block_table; btree; catalogs; indexed_tags }
  in
  System.restore ~master ~cipher ~doc ~constraints ~scheme ~db ~metadata ()

let save system path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string system))

let load ~master path =
  let ic = open_in_bin path in
  let data =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  of_string ~master data
