module Ast = Xpath.Ast
module Doc = Xmlcore.Doc

type t =
  | Node_type of Ast.path
  | Association of {
      context : Ast.path;
      q1 : Ast.path;
      q2 : Ast.path;
    }

let node_type p = Node_type (Xpath.Parser.parse p)

(* q1/q2 are relative to a context binding even when written with a
   leading slash ("/pname" in the paper means child-of-context). *)
let as_relative path = { path with Ast.absolute = false }

let association p q1 q2 =
  Association
    { context = Xpath.Parser.parse p;
      q1 = as_relative (Xpath.Parser.parse q1);
      q2 = as_relative (Xpath.Parser.parse q2) }

let parse s =
  match String.index_opt s ':' with
  | None -> node_type (String.trim s)
  | Some i ->
    let context = String.trim (String.sub s 0 i) in
    let rest = String.trim (String.sub s (i + 1) (String.length s - i - 1)) in
    let n = String.length rest in
    if n < 2 || rest.[0] <> '(' || rest.[n - 1] <> ')' then
      invalid_arg "Sc.parse: association must look like p:(q1, q2)";
    let inner = String.sub rest 1 (n - 2) in
    (match String.index_opt inner ',' with
     | None -> invalid_arg "Sc.parse: association needs two comma-separated paths"
     | Some j ->
       let q1 = String.trim (String.sub inner 0 j) in
       let q2 = String.trim (String.sub inner (j + 1) (String.length inner - j - 1)) in
       association context q1 q2)

let to_string = function
  | Node_type p -> Ast.to_string p
  | Association { context; q1; q2 } ->
    Printf.sprintf "%s:(%s, %s)" (Ast.to_string context) (Ast.to_string q1)
      (Ast.to_string q2)

let pp fmt sc = Format.pp_print_string fmt (to_string sc)

let bindings doc = function
  | Node_type p -> Xpath.Eval.eval doc p
  | Association { context; _ } -> Xpath.Eval.eval doc context

type captured_query = {
  query : Ast.path;
  witness : Doc.node;
}

(* Values reachable from [x] via relative path [q]. *)
let values_at doc x q =
  List.filter_map (fun n -> Doc.value doc n) (Xpath.Eval.eval_from doc [ x ] q)

(* Append two comparison predicates to the last step of [p]. *)
let with_value_predicates p q1 v1 q2 v2 =
  match List.rev p.Ast.steps with
  | [] -> invalid_arg "Sc: association context must have at least one step"
  | last :: before ->
    let preds =
      last.Ast.predicates
      @ [ Ast.Compare (q1, Ast.Eq, v1); Ast.Compare (q2, Ast.Eq, v2) ]
    in
    let last = { last with Ast.predicates = preds } in
    { p with Ast.steps = List.rev (last :: before) }

let sensitive_value_pairs doc = function
  | Node_type _ -> []
  | Association { context; q1; q2 } ->
    let pairs = Hashtbl.create 16 in
    let order = ref [] in
    List.iter
      (fun x ->
        let v1s = values_at doc x q1 and v2s = values_at doc x q2 in
        List.iter
          (fun v1 ->
            List.iter
              (fun v2 ->
                if not (Hashtbl.mem pairs (v1, v2)) then begin
                  Hashtbl.add pairs (v1, v2) ();
                  order := (v1, v2) :: !order
                end)
              v2s)
          v1s)
      (Xpath.Eval.eval doc context);
    List.rev !order

let captured_queries doc sc =
  match sc with
  | Node_type p ->
    List.map (fun witness -> { query = p; witness }) (Xpath.Eval.eval doc p)
  | Association { context; q1; q2 } ->
    List.concat_map
      (fun x ->
        let v1s = values_at doc x q1 and v2s = values_at doc x q2 in
        List.concat_map
          (fun v1 ->
            List.map
              (fun v2 ->
                { query = with_value_predicates context q1 v1 q2 v2; witness = x })
              v2s)
          v1s)
      (Xpath.Eval.eval doc context)
