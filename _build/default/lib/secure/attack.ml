type frequency_result = {
  domain_size : int;
  cracked : (string * int) list;
  crack_rate : float;
}

let frequency_attack ~known ~observed =
  let count_of table =
    let h = Hashtbl.create 16 in
    List.iter
      (fun f -> Hashtbl.replace h f (1 + Option.value ~default:0 (Hashtbl.find_opt h f)))
      table;
    h
  in
  let plaintext_freqs = count_of (List.map snd known) in
  let ciphertext_freqs = count_of (List.map snd observed) in
  let cracked =
    List.filter_map
      (fun (v, f) ->
        let unique_plain = Hashtbl.find_opt plaintext_freqs f = Some 1 in
        let unique_cipher = Hashtbl.find_opt ciphertext_freqs f = Some 1 in
        if unique_plain && unique_cipher then Some (v, f) else None)
      known
  in
  let domain_size = List.length known in
  { domain_size;
    cracked;
    crack_rate =
      (if domain_size = 0 then 0.0
       else float_of_int (List.length cracked) /. float_of_int domain_size) }

let deterministic_leaf_histogram known =
  List.mapi (fun i (_, count) -> Int64.of_int i, count) known

type coalescing_result = {
  valid_partitions : int;
  unique : bool;
}

let coalescing_attack ~known ~observed =
  let targets = Array.of_list (List.map snd known) in
  let counts = Array.of_list (List.map snd observed) in
  let n = Array.length counts and k = Array.length targets in
  let cap = 1_000_000 in
  (* ways.(i).(j): partitions of the first i ciphertext counts into the
     first j runs with matching sums. *)
  let ways = Array.make_matrix (n + 1) (k + 1) 0 in
  ways.(0).(0) <- 1;
  for j = 1 to k do
    for i = 1 to n do
      (* The j-th run ends at position i: scan back while the suffix
         sums to at most the target. *)
      let sum = ref 0 in
      let p = ref i in
      let acc = ref 0 in
      while !p >= 1 && !sum < targets.(j - 1) do
        sum := !sum + counts.(!p - 1);
        if !sum = targets.(j - 1) then
          acc := min cap (!acc + ways.(!p - 1).(j - 1));
        decr p
      done;
      ways.(i).(j) <- !acc
    done
  done;
  let valid = ways.(n).(k) in
  { valid_partitions = valid; unique = valid = 1 }

type tag_result = {
  tag_domain : int;
  identified : (string * int) list;
  identification_rate : float;
}

let tag_distribution_attack ~known_census ~observed =
  let count_multiplicity pairs =
    let h = Hashtbl.create 16 in
    List.iter
      (fun (_, c) ->
        Hashtbl.replace h c (1 + Option.value ~default:0 (Hashtbl.find_opt h c)))
      pairs;
    h
  in
  let known_mult = count_multiplicity known_census in
  let observed_mult = count_multiplicity observed in
  let identified =
    List.filter
      (fun (_, c) ->
        Hashtbl.find_opt known_mult c = Some 1
        && Hashtbl.find_opt observed_mult c = Some 1)
      known_census
  in
  let tag_domain = List.length known_census in
  { tag_domain;
    identified;
    identification_rate =
      (if tag_domain = 0 then 0.0
       else float_of_int (List.length identified) /. float_of_int tag_domain) }

type size_result = {
  candidates : int;
  survivors : int;
}

let size_attack ~candidate_sizes ~target_size =
  { candidates = List.length candidate_sizes;
    survivors = List.length (List.filter (fun s -> s = target_size) candidate_sizes) }

let belief_sequence ~k ~n ~queries =
  let prior = 1.0 /. float_of_int k in
  let after = exp (-.Counting.log_compositions_count ~n ~k) in
  prior :: List.init queries (fun _ -> after)
