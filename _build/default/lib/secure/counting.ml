(* Log-factorials are memoised; the table grows on demand. *)
let log_fact_table = ref [| 0.0 |]

let log_factorial n =
  if n < 0 then invalid_arg "Counting.log_factorial: negative argument";
  let table = !log_fact_table in
  if n < Array.length table then table.(n)
  else begin
    let old_len = Array.length table in
    let new_len = max (n + 1) (old_len * 2) in
    let grown = Array.make new_len 0.0 in
    Array.blit table 0 grown 0 old_len;
    for i = old_len to new_len - 1 do
      grown.(i) <- grown.(i - 1) +. log (float_of_int i)
    done;
    log_fact_table := grown;
    grown.(n)
  end

let log_binomial n k =
  if k < 0 || k > n then neg_infinity
  else log_factorial n -. log_factorial k -. log_factorial (n - k)

(* Exact int64 binomial via the multiplicative formula, detecting
   overflow at each step. *)
let binomial n k =
  if k < 0 || k > n then Some 0L
  else begin
    let k = min k (n - k) in
    let rec go acc i =
      if i > k then Some acc
      else
        (* acc * (n - k + i) / i, exact at every step *)
        let num = Int64.of_int (n - k + i) in
        if acc > Int64.div Int64.max_int num then None
        else go (Int64.div (Int64.mul acc num) (Int64.of_int i)) (i + 1)
    in
    go 1L 1
  end

let log_multinomial ks =
  let total = List.fold_left ( + ) 0 ks in
  List.fold_left (fun acc k -> acc -. log_factorial k) (log_factorial total) ks

let multinomial ks =
  (* Product of binomials (m choose k1)(m-k1 choose k2)..., each exact. *)
  let rec go remaining acc = function
    | [] -> Some acc
    | k :: rest ->
      (match binomial remaining k with
       | None -> None
       | Some b ->
         if b <> 0L && acc > Int64.div Int64.max_int b then None
         else go (remaining - k) (Int64.mul acc b) rest)
  in
  let total = List.fold_left ( + ) 0 ks in
  go total 1L ks

let compositions_count ~n ~k = binomial (n - 1) (k - 1)

let log_compositions_count ~n ~k = log_binomial (n - 1) (k - 1)
