module Doc = Xmlcore.Doc
module Tree = Xmlcore.Tree

(* [In (anchor, id, m)]: node [m] of block [id], whose placeholder sits
   at skeleton node [anchor].  Carrying the anchor makes document-order
   comparison self-contained. *)
type node =
  | Skel of Doc.node
  | In of Doc.node * int * Doc.node

type t = {
  skeleton : Doc.t;
  block_at : (Doc.node, int) Hashtbl.t;   (* placeholder skeleton node -> block id *)
  blocks : (int, Doc.t) Hashtbl.t;        (* returned blocks only *)
}

let create ~skeleton ~anchors ~blocks =
  let block_at = Hashtbl.create 16 in
  List.iter (fun (id, n) -> Hashtbl.replace block_at n id) anchors;
  let block_docs = Hashtbl.create 16 in
  List.iter (fun (id, doc) -> Hashtbl.replace block_docs id doc) blocks;
  { skeleton; block_at; blocks = block_docs }

(* A skeleton node resolves to itself, to a block root (returned
   placeholder), or to nothing (unreturned placeholder). *)
let resolve t n =
  match Hashtbl.find_opt t.block_at n with
  | None -> Some (Skel n)
  | Some id ->
    (match Hashtbl.find_opt t.blocks id with
     | Some doc -> Some (In (n, id, Doc.root doc))
     | None -> None)

module Navigation = struct
  type doc = t
  type nonrec node = node

  let root t =
    match resolve t (Doc.root t.skeleton) with
    | Some n -> n
    | None -> Skel (Doc.root t.skeleton)

  let children t = function
    | Skel n -> List.filter_map (resolve t) (Doc.children t.skeleton n)
    | In (anchor, id, m) ->
      let doc = Hashtbl.find t.blocks id in
      List.map (fun c -> In (anchor, id, c)) (Doc.children doc m)

  let parent t = function
    | Skel n ->
      (match Doc.parent t.skeleton n with
       | None -> None
       | Some p -> Some (Skel p))
    | In (anchor, id, m) ->
      let doc = Hashtbl.find t.blocks id in
      (match Doc.parent doc m with
       | Some p -> Some (In (anchor, id, p))
       | None ->
         (* The block root's parent is the placeholder's parent. *)
         (match Doc.parent t.skeleton anchor with
          | None -> None
          | Some p -> Some (Skel p)))

  (* Siblings after a node; a block root's siblings come from the
     placeholder's position in the skeleton. *)
  let following_siblings t node =
    let rec after target = function
      | [] -> []
      | c :: rest -> if c = target then rest else after target rest
    in
    match node with
    | Skel n ->
      (match Doc.parent t.skeleton n with
       | None -> []
       | Some p -> List.filter_map (resolve t) (after n (Doc.children t.skeleton p)))
    | In (anchor, id, m) ->
      let doc = Hashtbl.find t.blocks id in
      (match Doc.parent doc m with
       | Some p -> List.map (fun c -> In (anchor, id, c)) (after m (Doc.children doc p))
       | None ->
         (match Doc.parent t.skeleton anchor with
          | None -> []
          | Some p ->
            List.filter_map (resolve t) (after anchor (Doc.children t.skeleton p))))

  let rec collect_descendants t acc node =
    List.fold_left
      (fun acc k -> collect_descendants t (k :: acc) k)
      acc (children t node)

  let descendants t node = List.rev (collect_descendants t [] node)

  let all_nodes t =
    let r = root t in
    r :: descendants t r

  let tag t = function
    | Skel n -> Doc.tag t.skeleton n
    | In (_, id, m) -> Doc.tag (Hashtbl.find t.blocks id) m

  let value t = function
    | Skel n -> Doc.value t.skeleton n
    | In (_, id, m) -> Doc.value (Hashtbl.find t.blocks id) m

  (* Document order: a block sits at its placeholder's position. *)
  let order_key = function
    | Skel n -> n, -1, 0
    | In (anchor, id, m) -> anchor, id, m

  let compare_node a b = compare (order_key a) (order_key b)
end

module E = Xpath.Eval.Make (Navigation)

module Eval = struct
  let eval = E.eval
  let eval_union = E.eval_union
end

let rec subtree t node =
  match node with
  | Skel n ->
    (match Doc.value t.skeleton n with
     | Some v -> Tree.leaf (Doc.tag t.skeleton n) v
     | None ->
       Tree.element (Doc.tag t.skeleton n)
         (List.map (subtree t) (Navigation.children t (Skel n))))
  | In (anchor, id, m) ->
    let doc = Hashtbl.find t.blocks id in
    (match Doc.value doc m with
     | Some v -> Tree.leaf (Doc.tag doc m) v
     | None ->
       Tree.element (Doc.tag doc m)
         (List.map (fun c -> subtree t (In (anchor, id, c))) (Doc.children doc m)))
