module Doc = Xmlcore.Doc
module Tree = Xmlcore.Tree

(* Lexicographic next permutation over a string array; returns false at
   the last permutation.  Skips duplicate arrangements by construction
   (standard multiset-permutation behaviour). *)
let next_permutation a =
  let n = Array.length a in
  let rec find_pivot i =
    if i < 0 then None else if a.(i) < a.(i + 1) then Some i else find_pivot (i - 1)
  in
  match find_pivot (n - 2) with
  | None -> false
  | Some i ->
    let rec find_successor j = if a.(j) > a.(i) then j else find_successor (j - 1) in
    let j = find_successor (n - 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp;
    (* Reverse the suffix. *)
    let lo = ref (i + 1) and hi = ref (n - 1) in
    while !lo < !hi do
      let t = a.(!lo) in
      a.(!lo) <- a.(!hi);
      a.(!hi) <- t;
      incr lo;
      decr hi
    done;
    true

(* Rebuild the document with the [tag] leaves' values replaced by the
   given assignment (in document order). *)
let with_assignment doc ~tag values =
  let slots = Doc.nodes_with_tag doc tag in
  let assignment = Hashtbl.create 16 in
  List.iteri (fun i n -> Hashtbl.replace assignment n values.(i)) slots;
  let rec rebuild n =
    match Doc.value doc n with
    | Some v ->
      let v = Option.value ~default:v (Hashtbl.find_opt assignment n) in
      Tree.leaf (Doc.tag doc n) v
    | None -> Tree.element (Doc.tag doc n) (List.map rebuild (Doc.children doc n))
  in
  Doc.of_tree (rebuild (Doc.root doc))

let value_permutations doc ~tag ~limit =
  let slots = Doc.nodes_with_tag doc tag in
  let original =
    Array.of_list (List.map (fun n -> Option.get (Doc.value doc n)) slots)
  in
  if Array.length original = 0 then []
  else begin
    (* Enumerate from the sorted arrangement so all distinct multiset
       permutations are visited; put the original first. *)
    let current = Array.copy original in
    Array.sort String.compare current;
    let out = ref [ doc ] in
    let count = ref 1 in
    let continue = ref true in
    while !continue && !count < limit do
      if current <> original then begin
        out := with_assignment doc ~tag current :: !out;
        incr count
      end;
      continue := next_permutation current
    done;
    List.rev !out
  end

let candidate_count doc ~tag =
  let hist = Xmlcore.Stats.value_histogram doc ~tag in
  Counting.multinomial (List.map snd hist)

let structural_assignments ~leaves ~intervals =
  if leaves <= 0 || intervals <= 0 || intervals > leaves then
    invalid_arg "Candidates.structural_assignments: need 0 < intervals <= leaves";
  (* Compositions of [leaves] into [intervals] positive parts. *)
  let rec go remaining parts =
    if parts = 1 then [ [ remaining ] ]
    else
      List.concat_map
        (fun first ->
          List.map (fun rest -> first :: rest)
            (go (remaining - first) (parts - 1)))
        (List.init (remaining - parts + 1) (fun i -> i + 1))
  in
  go leaves intervals

let structural_candidate_trees ~tag ~leaf_tag ~values ~intervals =
  let leaves = List.length values in
  List.map
    (fun assignment ->
      let rec split values = function
        | [] -> []
        | size :: rest ->
          let rec take k = function
            | vs when k = 0 -> [], vs
            | v :: vs ->
              let taken, remaining = take (k - 1) vs in
              v :: taken, remaining
            | [] -> [], []
          in
          let group, remaining = take size values in
          Tree.element (tag ^ "_g") (List.map (Tree.leaf leaf_tag) group)
          :: split remaining rest
      in
      Tree.element tag (split values assignment))
    (structural_assignments ~leaves ~intervals)

type report = {
  candidates : int;
  all_conform : bool;
  equal_sizes : bool;
  equal_index_histograms : bool;
  satisfying_original : int;
}

let index_histogram sys =
  let h = Hashtbl.create 128 in
  Btree.iter (System.metadata sys).Metadata.btree (fun k _ ->
      Hashtbl.replace h k (1 + Option.value ~default:0 (Hashtbl.find_opt h k)));
  List.sort compare (Hashtbl.fold (fun k c acc -> (k, c) :: acc) h [])

let indistinguishability_report ~master ~constraints ~kind ~tag ~limit doc =
  let schema = Xmlcore.Schema.infer doc in
  let candidates = value_permutations doc ~tag ~limit in
  let all_conform =
    List.for_all (fun d -> Xmlcore.Schema.conforms d schema = Ok ()) candidates
  in
  (* Queries captured by association SCs in the true database. *)
  let captured =
    List.concat_map
      (fun sc ->
        match sc with
        | Sc.Association _ ->
          List.map (fun c -> c.Sc.query) (Sc.captured_queries doc sc)
        | Sc.Node_type _ -> [])
      constraints
  in
  let systems =
    List.map (fun d -> d, fst (System.setup ~master d constraints kind)) candidates
  in
  let sizes =
    List.map (fun (_, sys) -> Encrypt.encrypted_bytes (System.db sys)) systems
  in
  let equal_sizes =
    match sizes with
    | [] -> true
    | s :: rest -> List.for_all (fun s' -> s' = s) rest
  in
  let histograms = List.map (fun (_, sys) -> index_histogram sys) systems in
  let equal_index_histograms =
    match histograms with
    | [] -> true
    | h :: rest -> List.for_all (fun h' -> h' = h) rest
  in
  let satisfying_original =
    List.length
      (List.filter
         (fun (d, _) -> List.for_all (fun q -> Xpath.Eval.matches d q) captured)
         systems)
  in
  { candidates = List.length candidates;
    all_conform;
    equal_sizes;
    equal_index_histograms;
    satisfying_original }
