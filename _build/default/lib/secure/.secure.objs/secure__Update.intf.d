lib/secure/update.mli: Xmlcore Xpath
