lib/secure/constraint_graph.mli: Sc Vertex_cover Xmlcore
