lib/secure/metadata.mli: Btree Crypto Dsi Encrypt Opess Squery
