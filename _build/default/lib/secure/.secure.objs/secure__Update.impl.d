lib/secure/update.ml: Int List Printf Set Xmlcore Xpath
