lib/secure/persist.ml: Btree Buffer Codec Crypto Dsi Encrypt Fun List Metadata Opess Printf Sc Scheme String System Xmlcore Xpath
