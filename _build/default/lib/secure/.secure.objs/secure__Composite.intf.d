lib/secure/composite.mli: Xmlcore Xpath
