lib/secure/candidates.ml: Array Btree Counting Encrypt Hashtbl List Metadata Option Sc String System Xmlcore Xpath
