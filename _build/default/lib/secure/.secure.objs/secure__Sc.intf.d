lib/secure/sc.mli: Format Xmlcore Xpath
