lib/secure/server.ml: Btree Dsi Encrypt Float Hashtbl List Logs Metadata Option Squery String Xpath
