lib/secure/audit.ml: Encrypt Format Hashtbl List Option Server
