lib/secure/protocol.ml: Buffer Codec Encrypt Printf Server Squery Xpath
