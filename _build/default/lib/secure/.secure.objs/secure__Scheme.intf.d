lib/secure/scheme.mli: Sc Xmlcore
