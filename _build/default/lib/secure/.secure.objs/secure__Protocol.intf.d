lib/secure/protocol.mli: Server Squery
