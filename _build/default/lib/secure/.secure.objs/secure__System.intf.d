lib/secure/system.mli: Client Crypto Encrypt Metadata Sc Scheme Server Update Xmlcore Xpath
