lib/secure/vertex_cover.mli:
