lib/secure/attack.ml: Array Counting Hashtbl Int64 List Option
