lib/secure/sc.ml: Format Hashtbl List Printf String Xmlcore Xpath
