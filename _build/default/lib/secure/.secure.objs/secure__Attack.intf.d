lib/secure/attack.mli: Xmlcore
