lib/secure/client.ml: Composite Crypto Encrypt Hashtbl List Metadata Opess Option Squery Xmlcore Xpath
