lib/secure/encrypt.mli: Crypto Scheme Xmlcore
