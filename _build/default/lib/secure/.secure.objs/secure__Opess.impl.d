lib/secure/opess.ml: Array Crypto Float Hashtbl Int64 List Option Printf String Xpath
