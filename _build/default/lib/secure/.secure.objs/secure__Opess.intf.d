lib/secure/opess.mli: Xmlcore Xpath
