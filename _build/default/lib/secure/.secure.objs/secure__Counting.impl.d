lib/secure/counting.ml: Array Int64 List
