lib/secure/client.mli: Crypto Encrypt Metadata Squery Xmlcore Xpath
