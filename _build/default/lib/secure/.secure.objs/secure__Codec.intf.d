lib/secure/codec.mli: Buffer
