lib/secure/squery.ml: Buffer Format List Printf String Xpath
