lib/secure/composite.ml: Hashtbl List Xmlcore Xpath
