lib/secure/scheme.ml: Constraint_graph List Option Printf Sc Vertex_cover Xmlcore Xpath
