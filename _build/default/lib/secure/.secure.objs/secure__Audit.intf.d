lib/secure/audit.mli: Format Server
