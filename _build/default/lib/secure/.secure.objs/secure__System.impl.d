lib/secure/system.ml: Client Crypto Encrypt Float List Logs Metadata Protocol Sc Scheme Server Squery String Unix Update Xmlcore Xpath
