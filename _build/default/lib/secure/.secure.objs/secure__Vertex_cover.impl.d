lib/secure/vertex_cover.ml: Hashtbl List Printf Set String
