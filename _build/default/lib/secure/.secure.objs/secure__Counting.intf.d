lib/secure/counting.mli:
