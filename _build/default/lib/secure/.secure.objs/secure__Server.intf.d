lib/secure/server.mli: Btree Dsi Encrypt Metadata Squery Xpath
