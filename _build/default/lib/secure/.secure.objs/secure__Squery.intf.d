lib/secure/squery.mli: Format Xpath
