lib/secure/constraint_graph.ml: List Sc Set String Vertex_cover Xmlcore Xpath
