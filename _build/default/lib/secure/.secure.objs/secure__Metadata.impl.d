lib/secure/metadata.ml: Array Btree Crypto Dsi Encrypt Hashtbl List Opess Option Squery String Xmlcore
