lib/secure/encrypt.ml: Char Crypto Hashtbl List Printf Scheme String Xmlcore
