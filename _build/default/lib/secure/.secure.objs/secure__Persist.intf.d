lib/secure/persist.mli: System
