lib/secure/candidates.mli: Sc Scheme Xmlcore
