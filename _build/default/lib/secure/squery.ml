type token =
  | Clear of string
  | Enc of string

type test =
  | Tokens of token list
  | Any

type range_set =
  | Ranges of (int64 * int64) list
  | Unknown

type predicate =
  | Exists of path
  | Value of path * range_set
  | P_and of predicate * predicate
  | P_or of predicate * predicate
  | P_not of predicate

and step = {
  axis : Xpath.Ast.axis;
  test : test;
  predicates : predicate list;
}

and path = {
  absolute : bool;
  steps : step list;
}

let rec has_value_predicate p =
  List.exists
    (fun s -> List.exists inexact_predicate s.predicates)
    p.steps

(* Predicates the server cannot resolve exactly (gates the aggregate
   fast path). *)
and inexact_predicate = function
  | Value _ -> true
  | P_not _ -> true
  | P_and (a, b) | P_or (a, b) -> inexact_predicate a || inexact_predicate b
  | Exists q -> has_value_predicate q

let token_to_string = function
  | Clear tag -> tag
  | Enc hex ->
    let short = if String.length hex > 8 then String.sub hex 0 8 else hex in
    Printf.sprintf "enc:%s" short

let rec path_to_buffer out p =
  if p.steps = [] && not p.absolute then Buffer.add_char out '.'
  else
    List.iteri
      (fun i s ->
        let sep =
          match s.axis with
          | Xpath.Ast.Child -> "/"
          | Xpath.Ast.Descendant_or_self -> "//"
          | Xpath.Ast.Parent -> "/^"
          | Xpath.Ast.Following_sibling -> "/>"
          | Xpath.Ast.Preceding_sibling -> "/<"
          | Xpath.Ast.Following -> "/>>"
          | Xpath.Ast.Preceding -> "/<<"
        in
        if p.absolute || i > 0 || s.axis <> Xpath.Ast.Child then
          Buffer.add_string out sep;
        (match s.test with
         | Any -> Buffer.add_char out '*'
         | Tokens tokens ->
           Buffer.add_string out
             (String.concat "|" (List.map token_to_string tokens)));
        List.iter
          (fun pred ->
            Buffer.add_char out '[';
            predicate_to_buffer out pred;
            Buffer.add_char out ']')
          s.predicates)
      p.steps

and predicate_to_buffer out = function
  | P_and (a, b) ->
    predicate_to_buffer out a;
    Buffer.add_string out " and ";
    predicate_to_buffer out b
  | P_or (a, b) ->
    predicate_to_buffer out a;
    Buffer.add_string out " or ";
    predicate_to_buffer out b
  | P_not a ->
    Buffer.add_string out "not(";
    predicate_to_buffer out a;
    Buffer.add_char out ')'
  | Exists q -> path_to_buffer out q
  | Value (q, Unknown) ->
    path_to_buffer out q;
    Buffer.add_string out " in ?"
  | Value (q, Ranges ranges) ->
    path_to_buffer out q;
    Buffer.add_string out " in ";
    Buffer.add_string out
      (String.concat ","
         (List.map (fun (lo, hi) -> Printf.sprintf "[%Ld..%Ld]" lo hi) ranges))

let to_string p =
  let out = Buffer.create 64 in
  path_to_buffer out p;
  Buffer.contents out

let pp fmt p = Format.pp_print_string fmt (to_string p)
