(** The translated (server-side) query IR — the [Qs] of Figure 1.

    Structurally a mirror of {!Xpath.Ast.path}, but every name test has
    been replaced by opaque {e tokens} (clear tags for plaintext-only
    tags, Vernam ciphertext hex for tags that occur inside encryption
    blocks — a tag occurring on both sides carries both tokens), and
    every value comparison has been replaced by inclusive B-tree key
    ranges computed by OPESS translation (Figure 7(a)).

    The server sees nothing else: no plaintext tags of encrypted
    elements, no plaintext comparison literals, and no comparison
    operator semantics beyond "range scan". *)

type token =
  | Clear of string  (** plaintext tag, looked up as-is *)
  | Enc of string    (** hex Vernam ciphertext of the tag *)

type test =
  | Tokens of token list  (** name test: union of candidate tokens *)
  | Any                   (** wildcard *)

type range_set =
  | Ranges of (int64 * int64) list
      (** namespaced B-tree key ranges; an empty list is
          unsatisfiable *)
  | Unknown
      (** the attribute is not value-indexed: the server cannot prune
          and must keep every candidate (the client re-checks) *)

type predicate =
  | Exists of path
  | Value of path * range_set
      (** value constraint at the last step of the (possibly empty)
          relative path *)
  | P_and of predicate * predicate
  | P_or of predicate * predicate
  | P_not of predicate
      (** negation cannot prune soundly on the server (candidate sets
          are supersets), so it is carried for the record and ignored
          by server-side filtering; the client re-checks exactly *)

and step = {
  axis : Xpath.Ast.axis;
  test : test;
  predicates : predicate list;
}

and path = {
  absolute : bool;
  steps : step list;
}

val has_value_predicate : path -> bool
(** Whether any step (recursively) carries a value constraint.  Queries
    without one are resolved {e exactly} by the server's structural
    joins, which licenses the no-decryption MIN/MAX fast path. *)

val token_to_string : token -> string

val to_string : path -> string
(** Debug rendering (tokens shown abbreviated). *)

val pp : Format.formatter -> path -> unit
