(** Composite view of "skeleton + decrypted blocks" for client
    post-processing.

    After the server answers, the client holds the public skeleton
    (indexed once at setup) and the decrypted subtrees of the returned
    blocks.  This module exposes the combination as a single navigable
    document — without materialising the merged tree — so the cost of
    evaluating the original query scales with the data actually
    returned plus one traversal of the skeleton, not with a full
    document rebuild.

    Placeholders of blocks the server did not return are invisible:
    the server guarantees every block that could contribute to an
    answer or a predicate witness is returned, so pruning the rest
    preserves [Q(δ(Qs(η(D)))) = Q(D)]. *)

type node =
  | Skel of Xmlcore.Doc.node
  | In of Xmlcore.Doc.node * int * Xmlcore.Doc.node
      (** placeholder anchor in the skeleton, block id, node within the
          block's doc *)

type t

val create :
  skeleton:Xmlcore.Doc.t ->
  anchors:(int * Xmlcore.Doc.node) list ->
  blocks:(int * Xmlcore.Doc.t) list ->
  t
(** [create ~skeleton ~anchors ~blocks]: [anchors] maps block ids to
    their placeholder nodes in the skeleton; [blocks] holds the
    returned decrypted block documents. *)

val subtree : t -> node -> Xmlcore.Tree.t
(** Materialise the subtree rooted at a composite node (splicing any
    returned blocks below it; unreturned placeholders are dropped). *)

module Navigation : Xpath.Nav.S with type doc = t and type node = node

module Eval : sig
  val eval : t -> Xpath.Ast.path -> node list
  val eval_union : t -> Xpath.Ast.path list -> node list
end
