module Ast = Xpath.Ast
module Doc = Xmlcore.Doc

type endpoint = {
  sc_index : int;
  tag : string;
  nodes : Doc.node list;
}

type t = {
  graph : Vertex_cover.graph;
  endpoints : endpoint list;
  mandatory : Doc.node list;
}

let last_tag_of path =
  match List.rev path.Ast.steps with
  | [] -> None
  | step :: _ ->
    (match step.Ast.test with
     | Ast.Tag tag -> Some tag
     | Ast.Wildcard ->
       invalid_arg "Constraint_graph: association endpoint ends in a wildcard")

(* Encryption cost of covering a node set: subtree sizes plus one decoy
   per leaf (Definition 4.1's block-size measure). *)
let cost_of_nodes doc nodes =
  List.fold_left
    (fun acc n ->
      let subtree = Doc.subtree_node_count doc n in
      let decoy = if Doc.is_leaf doc n then 1 else 0 in
      acc +. float_of_int (subtree + decoy))
    0.0 nodes

let build doc scs =
  let mandatory = ref [] in
  let endpoints = ref [] in
  let edges = ref [] in
  List.iteri
    (fun sc_index sc ->
      match sc with
      | Sc.Node_type p -> mandatory := Xpath.Eval.eval doc p @ !mandatory
      | Sc.Association { context; q1; q2 } ->
        let bindings = Xpath.Eval.eval doc context in
        let endpoint_of q =
          (* An empty (self) path targets the context binding itself. *)
          let tag =
            match (if q.Ast.steps = [] then last_tag_of context else last_tag_of q) with
            | Some tag -> tag
            | None -> invalid_arg "Constraint_graph: empty context path"
          in
          let nodes =
            if q.Ast.steps = [] then bindings
            else Xpath.Eval.eval_from doc bindings q
          in
          { sc_index; tag; nodes }
        in
        let e1 = endpoint_of q1 and e2 = endpoint_of q2 in
        endpoints := e2 :: e1 :: !endpoints;
        edges := (e1.tag, e2.tag) :: !edges)
    scs;
  let endpoints = List.rev !endpoints in
  (* Vertex weight: cost of the union of that tag's endpoint nodes. *)
  let tags =
    List.sort_uniq String.compare (List.map (fun e -> e.tag) endpoints)
  in
  let weights =
    List.map
      (fun tag ->
        let nodes =
          List.sort_uniq compare
            (List.concat_map
               (fun e -> if String.equal e.tag tag then e.nodes else [])
               endpoints)
        in
        tag, cost_of_nodes doc nodes)
      tags
  in
  { graph = { Vertex_cover.weights; edges = List.rev !edges };
    endpoints;
    mandatory = List.sort_uniq compare !mandatory }

let nodes_for_tags t tags =
  let module S = Set.Make (String) in
  let s = S.of_list tags in
  List.sort_uniq compare
    (List.concat_map
       (fun e -> if S.mem e.tag s then e.nodes else [])
       t.endpoints)
