(** Encryption schemes (Sections 4.1, 4.2 and the four experimental
    variants of Section 7.1).

    An encryption scheme identifies the elements to encrypt: a set of
    {e block roots}, each of which is encrypted together with its whole
    subtree (and a decoy when the root is a leaf).  The four kinds:

    - [Opt] — the optimal secure scheme: node-type SC bindings plus an
      exact minimum-weight vertex cover of the constraint graph.
    - [App] — same, but the cover comes from Clarkson's greedy
      2-approximation.
    - [Sub] — the parents of [Opt]'s block roots (coarser blocks).
    - [Top] — the whole document as a single block.

    All four are {e secure} in the sense of Definition 3.3 (they
    encrypt at least what the SCs demand); they differ in size and in
    query-processing cost, which is exactly what the experiments
    measure. *)

type kind = Opt | App | Sub | Top

val kind_to_string : kind -> string
val all_kinds : kind list

type t = {
  kind : kind;
  block_roots : Xmlcore.Doc.node list;
    (** in document order, no root nested inside another *)
  covered_tags : string list;
    (** the vertex-cover tags (empty for [Top]) *)
}

val build : Xmlcore.Doc.t -> Sc.t list -> kind -> t
(** Construct the scheme of the given kind for the document and SCs. *)

val size : Xmlcore.Doc.t -> t -> int
(** Scheme size per Definition 4.1: total node count over all blocks,
    decoys included. *)

val block_count : t -> int

val in_some_block : Xmlcore.Doc.t -> t -> Xmlcore.Doc.node -> bool
(** Is the node inside (or the root of) an encryption block? *)

val enforces : Xmlcore.Doc.t -> t -> Sc.t list -> (unit, string) result
(** Check that the scheme enforces every SC: node-type bindings are in
    blocks, and for every association witness pair at least one side is
    in a block.  [Error] explains the first violation. *)
