(** The constraint graph of Section 7.1.

    One vertex per tag appearing as an association-SC endpoint, one
    edge per association SC (connecting the tags its two relative
    paths [q1], [q2] end in).  Vertex weights are the encryption cost
    of covering that tag: the total node count of the subtrees that
    would be encrypted, plus one decoy node per leaf block (the
    scheme-size measure of Definition 4.1).

    Node-type SCs do not enter the graph: their bindings are encrypted
    unconditionally ({e mandatory} nodes). *)

type endpoint = {
  sc_index : int;           (** which association SC (position in input list) *)
  tag : string;             (** tag the relative path ends in *)
  nodes : Xmlcore.Doc.node list;  (** nodes bound by [p/q] in the document *)
}

type t = {
  graph : Vertex_cover.graph;
  endpoints : endpoint list;
  mandatory : Xmlcore.Doc.node list;  (** node-type SC bindings *)
}

val build : Xmlcore.Doc.t -> Sc.t list -> t
(** @raise Invalid_argument if an association path ends in a wildcard
    (the graph abstraction needs a concrete endpoint tag). *)

val nodes_for_tags : t -> string list -> Xmlcore.Doc.node list
(** Union of endpoint node sets over the given tags, deduplicated. *)
