module Doc = Xmlcore.Doc

type kind = Opt | App | Sub | Top

let kind_to_string = function
  | Opt -> "opt"
  | App -> "app"
  | Sub -> "sub"
  | Top -> "top"

let all_kinds = [ Opt; App; Sub; Top ]

type t = {
  kind : kind;
  block_roots : Doc.node list;
  covered_tags : string list;
}

(* Drop roots nested inside another root's subtree; result is sorted. *)
let normalize_roots doc roots =
  let sorted = List.sort_uniq compare roots in
  let rec keep = function
    | [] -> []
    | r :: rest ->
      r :: keep (List.filter (fun r' -> not (Doc.is_ancestor doc r r')) rest)
  in
  keep sorted

let opt_roots doc scs ~solver =
  let cg = Constraint_graph.build doc scs in
  let cover = solver cg.Constraint_graph.graph in
  let covered_nodes = Constraint_graph.nodes_for_tags cg cover in
  normalize_roots doc (cg.Constraint_graph.mandatory @ covered_nodes), cover

let build doc scs kind =
  match kind with
  | Top -> { kind; block_roots = [ Doc.root doc ]; covered_tags = [] }
  | Opt ->
    let roots, cover = opt_roots doc scs ~solver:Vertex_cover.exact in
    { kind; block_roots = roots; covered_tags = cover }
  | App ->
    let roots, cover = opt_roots doc scs ~solver:Vertex_cover.clarkson_greedy in
    { kind; block_roots = roots; covered_tags = cover }
  | Sub ->
    let roots, cover = opt_roots doc scs ~solver:Vertex_cover.exact in
    let parents =
      List.map (fun r -> Option.value ~default:(Doc.root doc) (Doc.parent doc r)) roots
    in
    { kind; block_roots = normalize_roots doc parents; covered_tags = cover }

let size doc t =
  List.fold_left
    (fun acc r ->
      let decoy = if Doc.is_leaf doc r then 1 else 0 in
      acc + Doc.subtree_node_count doc r + decoy)
    0 t.block_roots

let block_count t = List.length t.block_roots

let in_some_block doc t n =
  List.exists (fun r -> r = n || Doc.is_ancestor doc r n) t.block_roots

let enforces doc t scs =
  let exception Violation of string in
  let check sc =
    match sc with
    | Sc.Node_type p ->
      List.iter
        (fun x ->
          if not (in_some_block doc t x) then
            raise
              (Violation
                 (Printf.sprintf "node-type SC %s: binding node %d is not encrypted"
                    (Sc.to_string sc) x)))
        (Xpath.Eval.eval doc p)
    | Sc.Association { context; q1; q2 } ->
      List.iter
        (fun x ->
          let n1 = Xpath.Eval.eval_from doc [ x ] q1 in
          let n2 = Xpath.Eval.eval_from doc [ x ] q2 in
          List.iter
            (fun y1 ->
              List.iter
                (fun y2 ->
                  if
                    (not (in_some_block doc t y1))
                    && not (in_some_block doc t y2)
                  then
                    raise
                      (Violation
                         (Printf.sprintf
                            "association SC %s: witness pair (%d, %d) has both \
                             sides in plaintext"
                            (Sc.to_string sc) y1 y2)))
                n2)
            n1)
        (Xpath.Eval.eval doc context)
  in
  match List.iter check scs with
  | () -> Ok ()
  | exception Violation msg -> Error msg
