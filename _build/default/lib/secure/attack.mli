(** Attack simulators for the Section 3.3 threat model.

    These play the honest-but-curious server armed with exact knowledge
    of domain values and occurrence frequencies, and measure how much
    it can actually recover — the empirical counterpart of Theorems
    4.1, 5.1, 5.2 and 6.1.

    The frequency attack matches observed ciphertext-side frequencies
    against the known plaintext histogram: any plaintext value whose
    frequency is unique in the histogram is cracked as soon as some
    ciphertext unit exhibits the same frequency.  Against a {e broken}
    scheme (deterministic per-leaf encryption, no decoy, no OPESS) this
    recovers most of the domain; against this system's value index the
    split-and-scaled distribution admits no frequency matches. *)

type frequency_result = {
  domain_size : int;             (** distinct plaintext values *)
  cracked : (string * int) list; (** plaintext values uniquely re-identified,
                                     with the matched frequency *)
  crack_rate : float;            (** |cracked| / domain_size *)
}

val frequency_attack :
  known:Xmlcore.Stats.histogram -> observed:(int64 * int) list -> frequency_result
(** [frequency_attack ~known ~observed]: [known] is the attacker's
    exact plaintext histogram; [observed] the ciphertext-side frequency
    table (e.g. B-tree key frequencies).  A plaintext value [v] with
    frequency [f] is cracked iff [f] is unique among plaintext
    frequencies {e and} exactly one observed ciphertext frequency
    equals [f]. *)

val deterministic_leaf_histogram : Xmlcore.Stats.histogram -> (int64 * int) list
(** The ciphertext histogram a {e broken} scheme would expose:
    deterministic encryption maps each value to one ciphertext with an
    unchanged count.  Feed to {!frequency_attack} to reproduce the
    Section 4.1 break. *)

type coalescing_result = {
  valid_partitions : int;
      (** ways to cut the ordered ciphertext frequency sequence into
          runs whose sums reproduce the known ordered plaintext
          frequencies (capped at 1_000_000) *)
  unique : bool;  (** exactly one — the attacker fully recovers the mapping *)
}

val coalescing_attack :
  known:Xmlcore.Stats.histogram -> observed:(int64 * int) list -> coalescing_result
(** The Section 5.2.1 re-aggregation attack that motivates {e scaling}:
    splitting preserves totals and order, so an attacker who knows the
    ordered plaintext frequencies can try to coalesce adjacent
    ciphertext values until the counts match.  Against split-only
    output the valid partition is typically unique (full crack);
    scaling destroys the sums, leaving zero valid partitions.  [known]
    must be ordered the same way the index orders values (numerically
    when the domain is numeric — pass the OPESS entry order). *)

type tag_result = {
  tag_domain : int;                 (** distinct encrypted tags *)
  identified : (string * int) list; (** tags re-identified by interval count *)
  identification_rate : float;
}

val tag_distribution_attack :
  known_census:(string * int) list ->
  observed:(string * int) list ->
  tag_result
(** The attacker the paper explicitly does {e not} defend against
    (Section 8, future work 2): one who knows the tag census.  Matching
    known per-tag node counts against the DSI table's per-token
    interval counts re-identifies every tag whose count is unique —
    unless grouping has collapsed counts.  [known_census] is the
    attacker's tag → node count knowledge; [observed] maps each table
    token to its interval count. *)

type size_result = {
  candidates : int;
  survivors : int;   (** candidates whose encrypted size matches *)
}

val size_attack : candidate_sizes:int list -> target_size:int -> size_result
(** Size-based attack: candidates are eliminated when their encrypted
    length differs from the hosted database's. *)

val belief_sequence : k:int -> n:int -> queries:int -> float list
(** Theorem 6.1's belief trajectory for an association [p:(b1,b2)]
    with [k] distinct plaintext and [n] ciphertext values of [b1]: the
    attacker's belief that a specific association holds starts at
    [1/k] and drops to [1/C(n-1,k-1)] at the first query, where it
    stays.  Element 0 is the prior; element [i] the belief after [i]
    queries. *)
