type graph = {
  weights : (string * float) list;
  edges : (string * string) list;
}

let weight_of g v =
  match List.assoc_opt v g.weights with
  | Some w -> w
  | None -> invalid_arg (Printf.sprintf "Vertex_cover: unknown vertex %S" v)

let cover_weight g cover = List.fold_left (fun acc v -> acc +. weight_of g v) 0.0 cover

let is_cover g cover =
  let module S = Set.Make (String) in
  let s = S.of_list cover in
  List.for_all (fun (a, b) -> S.mem a s || S.mem b s) g.edges

(* Self-loops force their vertex into any cover; removing them first
   simplifies both solvers. *)
let split_self_loops g =
  let forced, proper = List.partition (fun (a, b) -> String.equal a b) g.edges in
  let forced = List.sort_uniq String.compare (List.map fst forced) in
  let module S = Set.Make (String) in
  let fs = S.of_list forced in
  let remaining =
    List.filter (fun (a, b) -> not (S.mem a fs || S.mem b fs)) proper
  in
  forced, remaining

let exact g =
  let forced, edges = split_self_loops g in
  let forced_weight = List.fold_left (fun acc v -> acc +. weight_of g v) 0.0 forced in
  let best = ref None in
  let best_weight = ref infinity in
  (* Branch on an uncovered edge: either endpoint must join the cover. *)
  let rec branch cover cover_weight edges =
    if cover_weight >= !best_weight then ()
    else
      match edges with
      | [] ->
        best := Some cover;
        best_weight := cover_weight
      | (a, b) :: _ ->
        let take v =
          let remaining =
            List.filter (fun (x, y) -> not (String.equal x v || String.equal y v)) edges
          in
          branch (v :: cover) (cover_weight +. weight_of g v) remaining
        in
        take a;
        if not (String.equal a b) then take b
  in
  branch [] forced_weight edges;
  match !best with
  | Some cover -> List.sort String.compare (forced @ cover)
  | None -> List.sort String.compare forced

let clarkson_greedy g =
  let forced, edges = split_self_loops g in
  let residual = Hashtbl.create 16 in
  List.iter (fun (v, w) -> Hashtbl.replace residual v w) g.weights;
  let cover = ref forced in
  let edges = ref edges in
  let degree v =
    List.fold_left
      (fun acc (a, b) -> if String.equal a v || String.equal b v then acc + 1 else acc)
      0 !edges
  in
  while !edges <> [] do
    (* Vertex minimising residual weight per covered edge. *)
    let candidates =
      List.sort_uniq String.compare
        (List.concat_map (fun (a, b) -> [ a; b ]) !edges)
    in
    let score v = Hashtbl.find residual v /. float_of_int (degree v) in
    let best =
      List.fold_left
        (fun acc v ->
          match acc with
          | None -> Some v
          | Some u -> if score v < score u then Some v else acc)
        None candidates
    in
    match best with
    | None -> assert false
    | Some v ->
      let r = score v in
      (* Discount neighbours by v's amortised price, then drop v's edges. *)
      List.iter
        (fun (a, b) ->
          let neighbour =
            if String.equal a v then Some b
            else if String.equal b v then Some a
            else None
          in
          match neighbour with
          | Some u -> Hashtbl.replace residual u (Hashtbl.find residual u -. r)
          | None -> ())
        !edges;
      cover := v :: !cover;
      edges :=
        List.filter (fun (a, b) -> not (String.equal a v || String.equal b v)) !edges
  done;
  List.sort String.compare !cover
