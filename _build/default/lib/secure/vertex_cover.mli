(** Weighted vertex cover solvers.

    Finding an optimal secure encryption scheme reduces to (and from)
    weighted VERTEX COVER on the constraint graph (Theorem 4.2): each
    association SC is an edge between its two endpoint tags, and
    covering an edge means encrypting one endpoint's nodes.

    Two solvers: an exact branch-and-bound for the small graphs real SC
    sets produce, and Clarkson's modified greedy (Information
    Processing Letters 16, 1983) — the 2-approximation the paper's
    "app" scheme uses. *)

type graph = {
  weights : (string * float) list;  (** vertex, encryption cost *)
  edges : (string * string) list;   (** may include self-loops *)
}

val exact : graph -> string list
(** Minimum-weight cover by branch and bound.  Exponential worst case;
    intended for graphs of up to a few dozen vertices (constraint
    graphs are tiny).  Self-loop vertices are always taken. *)

val clarkson_greedy : graph -> string list
(** Clarkson's greedy: repeatedly take the vertex minimising
    residual-weight/degree, discounting its neighbours.  Cost at most
    twice the optimum. *)

val cover_weight : graph -> string list -> float
(** Total weight of the given vertices.
    @raise Invalid_argument if a vertex is unknown. *)

val is_cover : graph -> string list -> bool
(** Every edge has an endpoint in the set. *)
