(** Security constraints (Section 3.2).

    A security constraint is either
    - a {e node type} constraint [p]: every element that the XPath
      expression [p] binds to is classified in full — tag, structure
      and all leaf values below it; or
    - an {e association type} constraint [p : (q1, q2)]: for every node
      [x] bound by [p], the association between the values reached from
      [x] via [q1] and via [q2] is classified.

    The surface syntax accepted by {!parse} is exactly the paper's:
    ["//insurance"] or ["//patient:(/pname, /SSN)"]. *)

type t =
  | Node_type of Xpath.Ast.path
  | Association of {
      context : Xpath.Ast.path;  (** [p] *)
      q1 : Xpath.Ast.path;       (** relative to a [p]-binding *)
      q2 : Xpath.Ast.path;
    }

val node_type : string -> t
(** [node_type p] parses [p] as a node-type SC.
    @raise Xpath.Parser.Parse_error on bad syntax. *)

val association : string -> string -> string -> t
(** [association p q1 q2] builds [p : (q1, q2)]. *)

val parse : string -> t
(** Parse either surface form.
    @raise Xpath.Parser.Parse_error
    @raise Invalid_argument on a malformed association shell. *)

val to_string : t -> string

val pp : Format.formatter -> t -> unit

val bindings : Xmlcore.Doc.t -> t -> Xmlcore.Doc.node list
(** Nodes the constraint's context path binds to. *)

type captured_query = {
  query : Xpath.Ast.path;   (** a concrete query the SC captures *)
  witness : Xmlcore.Doc.node; (** a node witnessing [D |= query] *)
}

val captured_queries : Xmlcore.Doc.t -> t -> captured_query list
(** The queries captured by the SC that hold in the document: for a
    node-type SC [p], the query [p] itself per binding; for an
    association SC, [p\[q1 = v1\]\[q2 = v2\]] for every pair of values
    [(v1, v2)] co-occurring under a [p]-binding.  These are the facts
    [D |= A] that encryption must hide (Section 3.2). *)

val sensitive_value_pairs :
  Xmlcore.Doc.t -> t -> (string * string) list
(** For association SCs: the distinct co-occurring value pairs; empty
    for node-type SCs. *)
