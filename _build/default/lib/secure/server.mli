(** The untrusted server's query engine (Section 6.2).

    The server stores only what {!create} receives: the DSI index
    table, the encryption block table, the value B-tree and the
    ciphertext blocks.  Answering a translated query proceeds exactly
    as the paper's three steps:

    + look up every query node's token(s) in the DSI table and prune
      the interval lists with structural joins along the query tree
      (with back-propagation through predicate chains);
    + resolve each value constraint through the B-tree into a set of
      allowed targets (blocks or plaintext leaves) and prune the
      constrained node's intervals against it;
    + map the surviving intervals to the encryption blocks that must be
      shipped: every block whose representative interval contains or
      equals a surviving interval, plus every block lying inside a
      surviving interval of the distinguished (output) node — those are
      needed to reconstruct answers whose subtrees contain nested
      blocks.

    The response is a superset of what the query needs (false positives
    are filtered by the client), never a subset. *)

type t

type response = {
  blocks : Encrypt.block list;   (** ciphertexts shipped to the client *)
  bytes : int;                   (** transmission size, headers included *)
  candidate_intervals : int;     (** intervals surviving per query node, summed *)
  btree_hits : int;              (** value-index entries touched *)
}

val create :
  dsi_table:(string * Dsi.Interval.t list) list ->
  block_table:(int * Dsi.Interval.t) list ->
  btree:Metadata.target Btree.t ->
  blocks:Encrypt.block list ->
  t

val of_metadata : Metadata.t -> Encrypt.db -> t
(** Convenience: extracts exactly the server-visible parts. *)

val answer : t -> Squery.path -> response

val answer_extreme :
  t -> Squery.path -> key_range:(int64 * int64) -> direction:[ `Min | `Max ] ->
  response
(** MIN/MAX evaluation (Section 6.4): finds the extreme value-index
    entry in [key_range] compatible with the query's distinguished
    candidates and ships at most that one block.  Plaintext candidates
    need no shipping — they are in the skeleton.  The client combines
    both sides. *)

type step_report = {
  step_index : int;
  axis : Xpath.Ast.axis;
  raw_candidates : int;       (** intervals fetched from the DSI table *)
  surviving_candidates : int; (** after joins and predicate filtering *)
}

val explain : t -> Squery.path -> step_report list
(** Query-plan introspection: per main-chain step, how many intervals
    the token lookup produced and how many survived structural joins
    and predicate filtering.  Evaluation work is the same as
    {!answer}'s pruning phase; no blocks are selected. *)

val all_blocks : t -> Encrypt.block list
(** Everything — the naive method's response. *)

val stored_bytes : t -> int
(** Ciphertext bytes held by the server (headers included). *)
