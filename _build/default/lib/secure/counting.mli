(** Candidate-database counting for the security theorems.

    Theorem 4.1 bounds the attacker's search space by the multinomial
    [(Σk_i)! / Π k_i!]; Theorems 5.1 and 5.2 by products of binomials
    [(n-1 choose k-1)].  These numbers overflow machine integers
    quickly, so everything is computed in log-space with exact [int64]
    results returned when they fit. *)

val log_factorial : int -> float
(** Natural log of [n!] (exact summation, not Stirling). *)

val log_binomial : int -> int -> float
(** [log_binomial n k] = ln (n choose k); neg_infinity when k < 0 or
    k > n. *)

val binomial : int -> int -> int64 option
(** Exact value when it fits in int64, [None] on overflow. *)

val log_multinomial : int list -> float
(** [log_multinomial \[k1; ...; kn\]] = ln ((Σki)! / Π ki!) — the
    Theorem 4.1 candidate count for one attribute with occurrence
    frequencies ki. *)

val multinomial : int list -> int64 option
(** Exact multinomial when it fits. *)

val compositions_count : n:int -> k:int -> int64 option
(** [(n-1 choose k-1)] — the number of ways to assign [n] leaves to [k]
    intervals (Theorem 5.1) or to split [n] ciphertext values among [k]
    plaintext values order-preservingly (Theorem 5.2). *)

val log_compositions_count : n:int -> k:int -> float
