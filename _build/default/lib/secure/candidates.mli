(** Candidate-database enumeration — Theorems 4.1/5.2 made executable.

    The security proofs argue the attacker faces a large set of
    candidate plaintext databases, pairwise indistinguishable from the
    hosted one.  This module {e constructs} those candidates (for small
    documents) by permuting how an attribute's value multiset is
    assigned to its occurrence slots — exactly the degrees of freedom
    the multinomial of Theorem 4.1 counts — and checks the
    indistinguishability conditions of Definition 3.1 concretely. *)

val value_permutations :
  Xmlcore.Doc.t -> tag:string -> limit:int -> Xmlcore.Doc.t list
(** Up to [limit] distinct candidate documents obtained by reassigning
    the attribute's observed values over its occurrence slots
    (lexicographic enumeration over the value sequence; the original
    assignment is always first).  Every candidate conforms to the
    inferred schema of the input by construction. *)

val candidate_count : Xmlcore.Doc.t -> tag:string -> int64 option
(** The multinomial count of distinct assignments (Theorem 4.1's
    number), when it fits in an int64. *)

val structural_assignments : leaves:int -> intervals:int -> int list list
(** Theorem 5.1 / Figure 5: all ways to assign [leaves] leaf nodes to
    [intervals] grouped table intervals (compositions of [leaves] into
    [intervals] positive parts, each list summing to [leaves]).  The
    attacker cannot tell which assignment is real; the count is
    [C(leaves-1, intervals-1)].
    @raise Invalid_argument when either argument is non-positive or
    [intervals > leaves]. *)

val structural_candidate_trees :
  tag:string -> leaf_tag:string -> values:string list -> intervals:int ->
  Xmlcore.Tree.t list
(** Materialise Figure 5's candidate subtrees: for each assignment of
    the given leaf values into [intervals] groups, a tree
    [tag -> group* -> leaves] whose grouped shape would produce the same
    DSI table entry.  (Group elements are tagged [tag ^ "_g"].) *)

type report = {
  candidates : int;
  all_conform : bool;             (** every candidate matches the schema *)
  equal_sizes : bool;             (** equal encrypted sizes (Def. 3.1 (1)) *)
  equal_index_histograms : bool;  (** equal value-index distributions (Def. 3.1 (2)) *)
  satisfying_original : int;      (** candidates in which every originally
                                      captured association query still holds —
                                      Definition 3.3 (2) expects exactly 1 *)
}

val indistinguishability_report :
  master:string ->
  constraints:Sc.t list ->
  kind:Scheme.kind ->
  tag:string ->
  limit:int ->
  Xmlcore.Doc.t ->
  report
(** Host every candidate under the same key/scheme and compare what the
    attacker observes. *)
