(** Persistence of a hosted system.

    Saves everything expensive to rebuild — ciphertext blocks, the DSI
    index table, the encryption block table, the value B-tree entries
    and the OPESS catalogs — in a small versioned binary format, so a
    hosted database can be created once and queried across process
    lifetimes (the sxq CLI's [host -o] / [query --hosted]).

    The master secret is {e never} written: {!load} takes it again and
    re-derives every key.  Loading re-runs only the cheap parts (DSI
    re-assignment for the metadata record, skeleton indexing, server
    hash tables).

    The format is integrity-checked with an HMAC trailer under a key
    derived from the master secret, so a tampered or wrong-key file is
    rejected rather than decrypted into garbage. *)

exception Corrupt of string
(** Raised by {!load} on bad magic, version mismatch, truncation or
    MAC failure. *)

val save : System.t -> string -> unit
(** [save system path] writes the hosted bundle. *)

val load : master:string -> string -> System.t
(** [load ~master path] restores the system.
    @raise Corrupt on any integrity problem (including a wrong
    master). *)

val to_string : System.t -> string
(** In-memory encoding (what {!save} writes). *)

val of_string : master:string -> string -> System.t
(** In-memory decoding (what {!load} reads). *)
