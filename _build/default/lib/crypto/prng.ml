type t = { mutable state : int64 }

let create seed = { state = seed }

let copy t = { state = t.state }

(* splitmix64: Steele, Lea & Flood, "Fast splittable pseudorandom number
   generators", OOPSLA 2014. *)
let next64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  assert (bound > 0);
  (* land max_int clears the sign bit after the int64->int wrap. *)
  let r = Int64.to_int (next64 t) land max_int in
  r mod bound

let int_in t lo hi =
  assert (hi >= lo);
  lo + int t (hi - lo + 1)

let float t bound =
  (* 53 random mantissa bits. *)
  let bits = Int64.shift_right_logical (next64 t) 11 in
  Int64.to_float bits /. 9007199254740992.0 *. bound

let float_in t lo hi = lo +. float t (hi -. lo)

let bool t = Int64.logand (next64 t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choice t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))

let split t = create (next64 t)
