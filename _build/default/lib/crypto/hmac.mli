(** HMAC-SHA-256 (RFC 2104) and a PRF convenience layer.

    The PRF is the workhorse for deterministic, key-dependent randomness:
    DSI gap weights, OPESS split weights and scale factors, and the
    Vernam keystream are all derived from it. *)

val mac : key:string -> string -> string
(** [mac ~key msg] is the 32-byte HMAC-SHA-256 tag. *)

type prepared
(** A key with its inner/outer pads pre-absorbed: each subsequent MAC
    costs two compressions instead of four.  Use on hot paths (per-block
    IVs, keystreams). *)

val prepare : key:string -> prepared
val mac_prepared : prepared -> string -> string
val prf64_prepared : prepared -> string -> int64

val mac_hex : key:string -> string -> string
(** Hex rendering of {!mac}. *)

val prf64 : key:string -> string -> int64
(** [prf64 ~key label] extracts the first 8 bytes of [mac ~key label] as a
    big-endian int64: a pseudo-random function onto 64-bit values. *)

val prf_float : key:string -> string -> float
(** [prf_float ~key label] is a PRF output mapped uniformly to [\[0,1)]. *)

val prf_float_in : key:string -> string -> float -> float -> float
(** [prf_float_in ~key label lo hi] maps the PRF output to [\[lo, hi)]. *)

val prf_int : key:string -> string -> int -> int
(** [prf_int ~key label bound] maps the PRF output to [\[0, bound)].
    [bound] must be positive. *)
