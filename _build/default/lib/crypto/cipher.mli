(** Cipher-suite selection for block encryption.

    The paper leaves its block cipher unspecified; this library
    defaults to {!Xtea} (small, era-appropriate) and also offers
    AES-128 ({!Aes}), the cipher the W3C XML-Encryption deployments of
    the time actually used.  Both run in CBC mode with PKCS#7 padding
    and per-nonce derived IVs; the suite is chosen per key ring
    ({!Keys.create}) and recorded in persisted bundles. *)

type suite = Xtea | Aes

val suite_to_string : suite -> string
val suite_of_string : string -> suite option

type prepared
(** Key material with schedules expanded and IV-derivation pads
    pre-absorbed. *)

val prepare : suite -> string -> prepared

val suite_of : prepared -> suite

val encrypt : prepared -> nonce:string -> string -> string
val decrypt : prepared -> nonce:string -> string -> string
(** @raise Invalid_argument on malformed ciphertext or padding. *)

val ciphertext_length : suite -> int -> int
(** Ciphertext size for an n-byte plaintext under the suite's block
    size. *)
