(** Deterministic pseudo-random number generation.

    All randomness in the system flows through this module so that
    experiments and tests are reproducible.  The generator is splitmix64,
    which has a 64-bit state, passes BigCrush, and is trivially seedable.
    It is {e not} cryptographically secure; cryptographic randomness is
    derived from keyed primitives in {!Hmac} instead. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] returns a fresh generator. Distinct seeds give
    independent-looking streams. *)

val copy : t -> t
(** [copy t] duplicates the state; the copy evolves independently. *)

val next64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val float_in : t -> float -> float -> float
(** [float_in t lo hi] is uniform in [\[lo, hi)]. *)

val bool : t -> bool
(** Fair coin. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val choice : t -> 'a array -> 'a
(** Uniformly random element. The array must be non-empty. *)

val split : t -> t
(** [split t] derives a new generator from [t], advancing [t].  Use to give
    sub-components independent streams. *)
