let block_size = 64

let normalize_key key =
  let key = if String.length key > block_size then Sha256.digest key else key in
  let padded = Bytes.make block_size '\000' in
  Bytes.blit_string key 0 padded 0 (String.length key);
  padded

let xor_pad key byte =
  let out = Bytes.create block_size in
  for i = 0 to block_size - 1 do
    Bytes.set out i (Char.chr (Char.code (Bytes.get key i) lxor byte))
  done;
  Bytes.unsafe_to_string out

type prepared = {
  inner : Sha256.ctx;  (* state after absorbing key XOR ipad *)
  outer : Sha256.ctx;  (* state after absorbing key XOR opad *)
}

let prepare ~key =
  let key = normalize_key key in
  let inner = Sha256.init () in
  Sha256.update inner (xor_pad key 0x36);
  let outer = Sha256.init () in
  Sha256.update outer (xor_pad key 0x5c);
  { inner; outer }

let mac_prepared p msg =
  let ctx = Sha256.copy p.inner in
  Sha256.update ctx msg;
  let digest = Sha256.finalize ctx in
  let ctx = Sha256.copy p.outer in
  Sha256.update ctx digest;
  Sha256.finalize ctx

let mac ~key msg = mac_prepared (prepare ~key) msg

let first64 tag =
  let byte i = Int64.of_int (Char.code tag.[i]) in
  let acc = ref 0L in
  for i = 0 to 7 do
    acc := Int64.logor (Int64.shift_left !acc 8) (byte i)
  done;
  !acc

let prf64_prepared p label = first64 (mac_prepared p label)

let mac_hex ~key msg = Sha256.to_hex (mac ~key msg)

let prf64 ~key label = first64 (mac ~key label)

let prf_float ~key label =
  let bits = Int64.shift_right_logical (prf64 ~key label) 11 in
  Int64.to_float bits /. 9007199254740992.0

let prf_float_in ~key label lo hi = lo +. (prf_float ~key label *. (hi -. lo))

let prf_int ~key label bound =
  assert (bound > 0);
  Int64.to_int (Int64.rem (Int64.shift_right_logical (prf64 ~key label) 1) (Int64.of_int bound))
