(* FIPS 197 AES-128.  State is the standard column-major 16-byte block;
   rounds are computed directly from the S-box (no T-tables) — simple
   and verifiable against the published vectors. *)

let block_bytes = 16

let sbox =
  "\x63\x7c\x77\x7b\xf2\x6b\x6f\xc5\x30\x01\x67\x2b\xfe\xd7\xab\x76\
   \xca\x82\xc9\x7d\xfa\x59\x47\xf0\xad\xd4\xa2\xaf\x9c\xa4\x72\xc0\
   \xb7\xfd\x93\x26\x36\x3f\xf7\xcc\x34\xa5\xe5\xf1\x71\xd8\x31\x15\
   \x04\xc7\x23\xc3\x18\x96\x05\x9a\x07\x12\x80\xe2\xeb\x27\xb2\x75\
   \x09\x83\x2c\x1a\x1b\x6e\x5a\xa0\x52\x3b\xd6\xb3\x29\xe3\x2f\x84\
   \x53\xd1\x00\xed\x20\xfc\xb1\x5b\x6a\xcb\xbe\x39\x4a\x4c\x58\xcf\
   \xd0\xef\xaa\xfb\x43\x4d\x33\x85\x45\xf9\x02\x7f\x50\x3c\x9f\xa8\
   \x51\xa3\x40\x8f\x92\x9d\x38\xf5\xbc\xb6\xda\x21\x10\xff\xf3\xd2\
   \xcd\x0c\x13\xec\x5f\x97\x44\x17\xc4\xa7\x7e\x3d\x64\x5d\x19\x73\
   \x60\x81\x4f\xdc\x22\x2a\x90\x88\x46\xee\xb8\x14\xde\x5e\x0b\xdb\
   \xe0\x32\x3a\x0a\x49\x06\x24\x5c\xc2\xd3\xac\x62\x91\x95\xe4\x79\
   \xe7\xc8\x37\x6d\x8d\xd5\x4e\xa9\x6c\x56\xf4\xea\x65\x7a\xae\x08\
   \xba\x78\x25\x2e\x1c\xa6\xb4\xc6\xe8\xdd\x74\x1f\x4b\xbd\x8b\x8a\
   \x70\x3e\xb5\x66\x48\x03\xf6\x0e\x61\x35\x57\xb9\x86\xc1\x1d\x9e\
   \xe1\xf8\x98\x11\x69\xd9\x8e\x94\x9b\x1e\x87\xe9\xce\x55\x28\xdf\
   \x8c\xa1\x89\x0d\xbf\xe6\x42\x68\x41\x99\x2d\x0f\xb0\x54\xbb\x16"

(* Inverse S-box, computed once from the forward table. *)
let inv_sbox =
  let inv = Bytes.make 256 '\000' in
  String.iteri (fun i c -> Bytes.set inv (Char.code c) (Char.chr i)) sbox;
  Bytes.unsafe_to_string inv

let sub i = Char.code sbox.[i]
let inv_sub i = Char.code inv_sbox.[i]

(* GF(2^8) multiply by x (xtime) and general multiply. *)
let xtime b =
  let shifted = b lsl 1 in
  if shifted land 0x100 <> 0 then (shifted lxor 0x1B) land 0xFF else shifted

let gmul a b =
  let acc = ref 0 and a = ref a and b = ref b in
  for _ = 0 to 7 do
    if !b land 1 <> 0 then acc := !acc lxor !a;
    a := xtime !a;
    b := !b lsr 1
  done;
  !acc

type key = int array array (* 11 round keys x 16 bytes *)

let rcon = [| 0x01; 0x02; 0x04; 0x08; 0x10; 0x20; 0x40; 0x80; 0x1B; 0x36 |]

let expand raw =
  (* Key schedule over 44 words (4 bytes each). *)
  let w = Array.make_matrix 44 4 0 in
  for i = 0 to 3 do
    for j = 0 to 3 do
      w.(i).(j) <- Char.code raw.[(i * 4) + j]
    done
  done;
  for i = 4 to 43 do
    let temp = Array.copy w.(i - 1) in
    if i mod 4 = 0 then begin
      (* RotWord + SubWord + Rcon *)
      let t0 = temp.(0) in
      temp.(0) <- sub temp.(1) lxor rcon.((i / 4) - 1);
      temp.(1) <- sub temp.(2);
      temp.(2) <- sub temp.(3);
      temp.(3) <- sub t0
    end;
    for j = 0 to 3 do
      w.(i).(j) <- w.(i - 4).(j) lxor temp.(j)
    done
  done;
  Array.init 11 (fun r ->
      Array.init 16 (fun b -> w.((r * 4) + (b / 4)).(b mod 4)))

let key_of_raw raw =
  if String.length raw <> 16 then invalid_arg "Aes.key_of_raw: need 16 bytes";
  expand raw

let key_of_string s = expand (String.sub (Sha256.digest s) 0 16)

(* State layout: state.(r + 4*c) is row r, column c (column-major, as
   bytes arrive). *)
let add_round_key state rk =
  for i = 0 to 15 do
    state.(i) <- state.(i) lxor rk.(i)
  done

let shift_rows state =
  (* Row r rotates left by r; in column-major indexing row r lives at
     indices r, r+4, r+8, r+12. *)
  for r = 1 to 3 do
    let row = [| state.(r); state.(r + 4); state.(r + 8); state.(r + 12) |] in
    for c = 0 to 3 do
      state.(r + (4 * c)) <- row.((c + r) mod 4)
    done
  done

let inv_shift_rows state =
  for r = 1 to 3 do
    let row = [| state.(r); state.(r + 4); state.(r + 8); state.(r + 12) |] in
    for c = 0 to 3 do
      state.(r + (4 * c)) <- row.((c - r + 4) mod 4)
    done
  done

let mix_columns state =
  for c = 0 to 3 do
    let o = 4 * c in
    let a0 = state.(o) and a1 = state.(o + 1) and a2 = state.(o + 2)
    and a3 = state.(o + 3) in
    state.(o) <- xtime a0 lxor (xtime a1 lxor a1) lxor a2 lxor a3;
    state.(o + 1) <- a0 lxor xtime a1 lxor (xtime a2 lxor a2) lxor a3;
    state.(o + 2) <- a0 lxor a1 lxor xtime a2 lxor (xtime a3 lxor a3);
    state.(o + 3) <- (xtime a0 lxor a0) lxor a1 lxor a2 lxor xtime a3
  done

(* Precomputed GF(2^8) multiplication tables for the inverse
   MixColumns constants — decryption is on the client's hot path. *)
let table c = Array.init 256 (fun b -> gmul b c)
let mul9 = table 0x09
let mul11 = table 0x0B
let mul13 = table 0x0D
let mul14 = table 0x0E

let inv_mix_columns state =
  for c = 0 to 3 do
    let o = 4 * c in
    let a0 = state.(o) and a1 = state.(o + 1) and a2 = state.(o + 2)
    and a3 = state.(o + 3) in
    state.(o) <- mul14.(a0) lxor mul11.(a1) lxor mul13.(a2) lxor mul9.(a3);
    state.(o + 1) <- mul9.(a0) lxor mul14.(a1) lxor mul11.(a2) lxor mul13.(a3);
    state.(o + 2) <- mul13.(a0) lxor mul9.(a1) lxor mul14.(a2) lxor mul11.(a3);
    state.(o + 3) <- mul11.(a0) lxor mul13.(a1) lxor mul9.(a2) lxor mul14.(a3)
  done

let encrypt_block key buf off =
  let state = Array.init 16 (fun i -> Char.code (Bytes.get buf (off + i))) in
  add_round_key state key.(0);
  for round = 1 to 9 do
    for i = 0 to 15 do
      state.(i) <- sub state.(i)
    done;
    shift_rows state;
    mix_columns state;
    add_round_key state key.(round)
  done;
  for i = 0 to 15 do
    state.(i) <- sub state.(i)
  done;
  shift_rows state;
  add_round_key state key.(10);
  for i = 0 to 15 do
    Bytes.set buf (off + i) (Char.chr state.(i))
  done

let decrypt_block key buf off =
  let state = Array.init 16 (fun i -> Char.code (Bytes.get buf (off + i))) in
  add_round_key state key.(10);
  for round = 9 downto 1 do
    inv_shift_rows state;
    for i = 0 to 15 do
      state.(i) <- inv_sub state.(i)
    done;
    add_round_key state key.(round);
    inv_mix_columns state
  done;
  inv_shift_rows state;
  for i = 0 to 15 do
    state.(i) <- inv_sub state.(i)
  done;
  add_round_key state key.(0);
  for i = 0 to 15 do
    Bytes.set buf (off + i) (Char.chr state.(i))
  done
