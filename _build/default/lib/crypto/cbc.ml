let block_bytes = 8

type prepared = {
  cipher_key : Xtea.key;
  iv_mac : Hmac.prepared;
}

let prepare key =
  { cipher_key = Xtea.key_of_string key; iv_mac = Hmac.prepare ~key }

let iv_of_prepared p ~nonce = Hmac.prf64_prepared p.iv_mac ("cbc-iv\x00" ^ nonce)

let get64 s off =
  let byte i = Int64.of_int (Char.code s.[off + i]) in
  let acc = ref 0L in
  for i = 0 to 7 do
    acc := Int64.logor (Int64.shift_left !acc 8) (byte i)
  done;
  !acc

let set64 b off v =
  for i = 0 to 7 do
    let byte = Int64.to_int (Int64.logand (Int64.shift_right_logical v ((7 - i) * 8)) 0xFFL) in
    Bytes.set b (off + i) (Char.chr byte)
  done

let pad plaintext =
  let len = String.length plaintext in
  let pad_len = block_bytes - (len mod block_bytes) in
  let out = Bytes.make (len + pad_len) (Char.chr pad_len) in
  Bytes.blit_string plaintext 0 out 0 len;
  Bytes.unsafe_to_string out

let unpad padded =
  let len = String.length padded in
  if len = 0 then invalid_arg "Cbc.decrypt: empty plaintext";
  let pad_len = Char.code padded.[len - 1] in
  if pad_len = 0 || pad_len > block_bytes || pad_len > len then
    invalid_arg "Cbc.decrypt: malformed padding";
  for i = len - pad_len to len - 1 do
    if Char.code padded.[i] <> pad_len then invalid_arg "Cbc.decrypt: malformed padding"
  done;
  String.sub padded 0 (len - pad_len)

let encrypt_prepared p ~nonce plaintext =
  let padded = pad plaintext in
  let n = String.length padded / block_bytes in
  let out = Bytes.create (String.length padded) in
  let prev = ref (iv_of_prepared p ~nonce) in
  for i = 0 to n - 1 do
    let block = Int64.logxor (get64 padded (i * block_bytes)) !prev in
    let enc = Xtea.encrypt_block p.cipher_key block in
    set64 out (i * block_bytes) enc;
    prev := enc
  done;
  Bytes.unsafe_to_string out

let decrypt_prepared p ~nonce ciphertext =
  let len = String.length ciphertext in
  if len = 0 || len mod block_bytes <> 0 then
    invalid_arg "Cbc.decrypt: ciphertext length must be a positive multiple of 8";
  let out = Bytes.create len in
  let prev = ref (iv_of_prepared p ~nonce) in
  for i = 0 to (len / block_bytes) - 1 do
    let enc = get64 ciphertext (i * block_bytes) in
    let dec = Int64.logxor (Xtea.decrypt_block p.cipher_key enc) !prev in
    set64 out (i * block_bytes) dec;
    prev := enc
  done;
  unpad (Bytes.unsafe_to_string out)

let encrypt ~key ~nonce plaintext = encrypt_prepared (prepare key) ~nonce plaintext

let decrypt ~key ~nonce ciphertext = decrypt_prepared (prepare key) ~nonce ciphertext

let ciphertext_length n = ((n / block_bytes) + 1) * block_bytes
