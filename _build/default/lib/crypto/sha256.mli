(** SHA-256 message digest (FIPS 180-4).

    Pure OCaml implementation used as the root primitive for key
    derivation ({!Keys}), MACs ({!Hmac}) and keystream generation
    ({!Vernam}).  Verified against the FIPS test vectors in the test
    suite. *)

type ctx
(** Incremental hashing context. *)

val init : unit -> ctx
(** Fresh context. *)

val copy : ctx -> ctx
(** Independent clone of the running state — lets a fixed prefix (e.g.
    an HMAC pad) be absorbed once and reused. *)

val update : ctx -> string -> unit
(** [update ctx s] absorbs the bytes of [s]. *)

val update_bytes : ctx -> bytes -> int -> int -> unit
(** [update_bytes ctx b off len] absorbs [len] bytes of [b] from [off]. *)

val finalize : ctx -> string
(** [finalize ctx] returns the 32-byte digest. The context must not be
    used afterwards. *)

val digest : string -> string
(** [digest s] is the 32-byte SHA-256 of [s]. *)

val hex : string -> string
(** [hex s] is the digest of [s] as a 64-character lowercase hex string. *)

val to_hex : string -> string
(** [to_hex raw] renders an arbitrary byte string in lowercase hex. *)
