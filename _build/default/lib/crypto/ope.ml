type t = {
  key : Hmac.prepared;
  domain_bits : int;
  domain_max : int64;
  range_max : int64;
  (* Memoised range split points keyed by "depth:dlo"; encryption of a
     sorted batch revisits the same prefix path repeatedly. *)
  splits : (string, int64) Hashtbl.t;
}

let headroom_bits = 16

let create ~key ~domain_bits =
  if domain_bits < 1 || domain_bits > 40 then
    invalid_arg "Ope.create: domain_bits must be in [1, 40]";
  { key = Hmac.prepare ~key;
    domain_bits;
    domain_max = Int64.shift_left 1L domain_bits;
    range_max = Int64.shift_left 1L (domain_bits + headroom_bits);
    splits = Hashtbl.create 1024 }

let domain_max t = t.domain_max
let range_max t = t.range_max

(* Keyed fraction in [1/4, 3/4) used to split a range interval. *)
let split_fraction t ~depth ~dlo =
  let label = Printf.sprintf "ope-split\x00%d\x00%Ld" depth dlo in
  match Hashtbl.find_opt t.splits label with
  | Some cached -> Int64.to_float cached /. 9007199254740992.0
  | None ->
    let bits = Int64.shift_right_logical (Hmac.prf64_prepared t.key label) 11 in
    Hashtbl.replace t.splits label bits;
    Int64.to_float bits /. 9007199254740992.0

(* Offset of the ciphertext inside a leaf range interval of size [size]. *)
let leaf_offset t ~dlo size =
  if size <= 1L then 0L
  else
    let label = Printf.sprintf "ope-leaf\x00%Ld" dlo in
    Int64.rem (Int64.shift_right_logical (Hmac.prf64_prepared t.key label) 1) size

(* Split range [rlo, rhi) for domain halves of sizes [ldom] and [rdom]:
   pick rmid such that each side keeps at least its domain size of room. *)
let range_split t ~depth ~dlo ~rlo ~rhi ~ldom ~rdom =
  let range_size = Int64.sub rhi rlo in
  let slack = Int64.sub range_size (Int64.add ldom rdom) in
  assert (slack >= 0L);
  let frac = 0.25 +. (split_fraction t ~depth ~dlo *. 0.5) in
  let extra = Int64.of_float (Int64.to_float slack *. frac) in
  Int64.add rlo (Int64.add ldom extra)

let encrypt t x =
  if x < 0L || x >= t.domain_max then invalid_arg "Ope.encrypt: plaintext out of domain";
  let rec go ~depth ~dlo ~dhi ~rlo ~rhi =
    let dsize = Int64.sub dhi dlo in
    if dsize = 1L then Int64.add rlo (leaf_offset t ~dlo (Int64.sub rhi rlo))
    else
      let half = Int64.shift_right_logical dsize 1 in
      let dmid = Int64.add dlo half in
      let rmid =
        range_split t ~depth ~dlo ~rlo ~rhi ~ldom:half ~rdom:(Int64.sub dsize half)
      in
      if x < dmid then go ~depth:(depth + 1) ~dlo ~dhi:dmid ~rlo ~rhi:rmid
      else go ~depth:(depth + 1) ~dlo:dmid ~dhi ~rlo:rmid ~rhi
  in
  go ~depth:0 ~dlo:0L ~dhi:t.domain_max ~rlo:0L ~rhi:t.range_max

let decrypt t c =
  if c < 0L || c >= t.range_max then raise Not_found;
  let rec go ~depth ~dlo ~dhi ~rlo ~rhi =
    let dsize = Int64.sub dhi dlo in
    if dsize = 1L then
      if c = Int64.add rlo (leaf_offset t ~dlo (Int64.sub rhi rlo)) then dlo
      else raise Not_found
    else
      let half = Int64.shift_right_logical dsize 1 in
      let dmid = Int64.add dlo half in
      let rmid =
        range_split t ~depth ~dlo ~rlo ~rhi ~ldom:half ~rdom:(Int64.sub dsize half)
      in
      if c < rmid then go ~depth:(depth + 1) ~dlo ~dhi:dmid ~rlo ~rhi:rmid
      else go ~depth:(depth + 1) ~dlo:dmid ~dhi ~rlo:rmid ~rhi
  in
  go ~depth:0 ~dlo:0L ~dhi:t.domain_max ~rlo:0L ~rhi:t.range_max
