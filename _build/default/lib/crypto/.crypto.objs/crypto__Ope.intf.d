lib/crypto/ope.mli:
