lib/crypto/ope.ml: Hashtbl Hmac Int64 Printf
