lib/crypto/cbc.mli:
