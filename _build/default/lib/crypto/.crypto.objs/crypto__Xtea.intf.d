lib/crypto/xtea.mli:
