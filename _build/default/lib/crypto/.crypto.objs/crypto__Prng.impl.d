lib/crypto/prng.ml: Array Int64
