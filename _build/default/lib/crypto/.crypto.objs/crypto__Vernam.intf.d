lib/crypto/vernam.mli:
