lib/crypto/cbc.ml: Bytes Char Hmac Int64 String Xtea
