lib/crypto/cipher.ml: Aes Bytes Cbc Char Hmac String
