lib/crypto/aes.ml: Array Bytes Char Sha256 String
