lib/crypto/vernam.ml: Buffer Char Hmac Printf Sha256 String
