lib/crypto/hmac.ml: Bytes Char Int64 Sha256 String
