lib/crypto/hmac.mli:
