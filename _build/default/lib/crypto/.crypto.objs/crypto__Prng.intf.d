lib/crypto/prng.mli:
