lib/crypto/xtea.ml: Array Char Int64 Sha256 String
