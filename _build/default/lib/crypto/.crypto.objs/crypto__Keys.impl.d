lib/crypto/keys.ml: Cipher Hashtbl Hmac Printf
