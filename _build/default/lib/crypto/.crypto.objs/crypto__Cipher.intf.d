lib/crypto/cipher.mli:
