lib/crypto/keys.mli: Cipher
