(** AES-128 block cipher (FIPS 197).

    The paper's deployment context (W3C XML-Encryption, 2006) would use
    AES; this implementation provides it as an alternative to {!Xtea}
    through the {!Cipher} suite selector.  Straightforward table-free
    SubBytes/ShiftRows/MixColumns rounds — correctness over speed; the
    FIPS and NIST-KAT vectors are checked in the test suite. *)

type key
(** Expanded 11-round key schedule. *)

val key_of_string : string -> key
(** Derive a 128-bit key from arbitrary bytes (SHA-256, first 16
    bytes), mirroring {!Xtea.key_of_string}. *)

val key_of_raw : string -> key
(** Use exactly these 16 bytes as the key.
    @raise Invalid_argument unless the length is 16. *)

val block_bytes : int
(** 16. *)

val encrypt_block : key -> Bytes.t -> int -> unit
(** [encrypt_block k buf off] encrypts the 16 bytes at [off] in
    place. *)

val decrypt_block : key -> Bytes.t -> int -> unit
(** Inverse of {!encrypt_block}. *)
