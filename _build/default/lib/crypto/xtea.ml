(* 32-bit words are kept in native ints (masked), avoiding boxed Int32
   arithmetic on the hot path — block en/decryption dominates the
   system's measured costs. *)

type key = int array (* 4 words, each in [0, 2^32) *)

let mask = 0xFFFFFFFF

let key_of_string s =
  let h = Sha256.digest s in
  let word i =
    let byte j = Char.code h.[(i * 4) + j] in
    (byte 0 lsl 24) lor (byte 1 lsl 16) lor (byte 2 lsl 8) lor byte 3
  in
  [| word 0; word 1; word 2; word 3 |]

let rounds = 32
let delta = 0x9E3779B9

let split_block b =
  ( Int64.to_int (Int64.shift_right_logical b 32) land mask,
    Int64.to_int b land mask )

let join_block v0 v1 =
  Int64.logor
    (Int64.shift_left (Int64.of_int v0) 32)
    (Int64.of_int v1)

(* The XTEA Feistel half-round term: ((v<<4 ^ v>>5) + v) ^ (sum + k). *)
let round_term v sum key_word =
  let shifted = ((v lsl 4) land mask) lxor (v lsr 5) in
  ((shifted + v) land mask) lxor ((sum + key_word) land mask)

let encrypt_block key b =
  let v0, v1 = split_block b in
  let v0 = ref v0 and v1 = ref v1 and sum = ref 0 in
  for _ = 1 to rounds do
    v0 := (!v0 + round_term !v1 !sum key.(!sum land 3)) land mask;
    sum := (!sum + delta) land mask;
    v1 := (!v1 + round_term !v0 !sum key.((!sum lsr 11) land 3)) land mask
  done;
  join_block !v0 !v1

let decrypt_block key b =
  let v0, v1 = split_block b in
  let v0 = ref v0 and v1 = ref v1 in
  let sum = ref ((delta * rounds) land mask) in
  for _ = 1 to rounds do
    v1 := (!v1 - round_term !v0 !sum key.((!sum lsr 11) land 3)) land mask;
    sum := (!sum - delta) land mask;
    v0 := (!v0 - round_term !v1 !sum key.(!sum land 3)) land mask
  done;
  join_block !v0 !v1
