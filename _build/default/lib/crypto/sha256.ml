(* FIPS 180-4 SHA-256.  Words are native ints masked to 32 bits —
   unboxed arithmetic matters because HMAC (hence key derivation, DSI
   weights, OPESS randomness and Vernam tokens) sits on hot paths. *)

let mask = 0xFFFFFFFF

let k =
  [| 0x428a2f98; 0x71374491; 0xb5c0fbcf; 0xe9b5dba5; 0x3956c25b;
     0x59f111f1; 0x923f82a4; 0xab1c5ed5; 0xd807aa98; 0x12835b01;
     0x243185be; 0x550c7dc3; 0x72be5d74; 0x80deb1fe; 0x9bdc06a7;
     0xc19bf174; 0xe49b69c1; 0xefbe4786; 0x0fc19dc6; 0x240ca1cc;
     0x2de92c6f; 0x4a7484aa; 0x5cb0a9dc; 0x76f988da; 0x983e5152;
     0xa831c66d; 0xb00327c8; 0xbf597fc7; 0xc6e00bf3; 0xd5a79147;
     0x06ca6351; 0x14292967; 0x27b70a85; 0x2e1b2138; 0x4d2c6dfc;
     0x53380d13; 0x650a7354; 0x766a0abb; 0x81c2c92e; 0x92722c85;
     0xa2bfe8a1; 0xa81a664b; 0xc24b8b70; 0xc76c51a3; 0xd192e819;
     0xd6990624; 0xf40e3585; 0x106aa070; 0x19a4c116; 0x1e376c08;
     0x2748774c; 0x34b0bcb5; 0x391c0cb3; 0x4ed8aa4a; 0x5b9cca4f;
     0x682e6ff3; 0x748f82ee; 0x78a5636f; 0x84c87814; 0x8cc70208;
     0x90befffa; 0xa4506ceb; 0xbef9a3f7; 0xc67178f2 |]

type ctx = {
  h : int array;            (* 8 chaining words *)
  buf : Bytes.t;            (* 64-byte block buffer *)
  mutable buf_len : int;    (* bytes currently in [buf] *)
  mutable total : int64;    (* total message bytes absorbed *)
  w : int array;            (* message schedule scratch *)
}

let init () =
  { h = [| 0x6a09e667; 0xbb67ae85; 0x3c6ef372; 0xa54ff53a;
           0x510e527f; 0x9b05688c; 0x1f83d9ab; 0x5be0cd19 |];
    buf = Bytes.create 64;
    buf_len = 0;
    total = 0L;
    w = Array.make 64 0 }

let copy ctx =
  { h = Array.copy ctx.h;
    buf = Bytes.copy ctx.buf;
    buf_len = ctx.buf_len;
    total = ctx.total;
    w = Array.make 64 0 }

let rotr x n = ((x lsr n) lor (x lsl (32 - n))) land mask

(* Compress one 64-byte block held in [block] at offset [off]. *)
let compress ctx block off =
  let w = ctx.w in
  for i = 0 to 15 do
    let b j = Char.code (Bytes.unsafe_get block (off + (i * 4) + j)) in
    w.(i) <- (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3
  done;
  for i = 16 to 63 do
    let x15 = w.(i - 15) and x2 = w.(i - 2) in
    let s0 = rotr x15 7 lxor rotr x15 18 lxor (x15 lsr 3) in
    let s1 = rotr x2 17 lxor rotr x2 19 lxor (x2 lsr 10) in
    w.(i) <- (w.(i - 16) + s0 + w.(i - 7) + s1) land mask
  done;
  let a = ref ctx.h.(0) and b = ref ctx.h.(1) and c = ref ctx.h.(2)
  and d = ref ctx.h.(3) and e = ref ctx.h.(4) and f = ref ctx.h.(5)
  and g = ref ctx.h.(6) and h = ref ctx.h.(7) in
  for i = 0 to 63 do
    let s1 = rotr !e 6 lxor rotr !e 11 lxor rotr !e 25 in
    let ch = (!e land !f) lxor (lnot !e land !g) in
    let t1 = (!h + s1 + ch + k.(i) + w.(i)) land mask in
    let s0 = rotr !a 2 lxor rotr !a 13 lxor rotr !a 22 in
    let maj = (!a land !b) lxor (!a land !c) lxor (!b land !c) in
    let t2 = (s0 + maj) land mask in
    h := !g; g := !f; f := !e; e := (!d + t1) land mask;
    d := !c; c := !b; b := !a; a := (t1 + t2) land mask
  done;
  ctx.h.(0) <- (ctx.h.(0) + !a) land mask;
  ctx.h.(1) <- (ctx.h.(1) + !b) land mask;
  ctx.h.(2) <- (ctx.h.(2) + !c) land mask;
  ctx.h.(3) <- (ctx.h.(3) + !d) land mask;
  ctx.h.(4) <- (ctx.h.(4) + !e) land mask;
  ctx.h.(5) <- (ctx.h.(5) + !f) land mask;
  ctx.h.(6) <- (ctx.h.(6) + !g) land mask;
  ctx.h.(7) <- (ctx.h.(7) + !h) land mask

let update_bytes ctx b off len =
  assert (off >= 0 && len >= 0 && off + len <= Bytes.length b);
  ctx.total <- Int64.add ctx.total (Int64.of_int len);
  let pos = ref off and remaining = ref len in
  (* Fill the partial buffer first. *)
  if ctx.buf_len > 0 then begin
    let need = 64 - ctx.buf_len in
    let take = min need !remaining in
    Bytes.blit b !pos ctx.buf ctx.buf_len take;
    ctx.buf_len <- ctx.buf_len + take;
    pos := !pos + take;
    remaining := !remaining - take;
    if ctx.buf_len = 64 then begin
      compress ctx ctx.buf 0;
      ctx.buf_len <- 0
    end
  end;
  while !remaining >= 64 do
    compress ctx b !pos;
    pos := !pos + 64;
    remaining := !remaining - 64
  done;
  if !remaining > 0 then begin
    Bytes.blit b !pos ctx.buf 0 !remaining;
    ctx.buf_len <- !remaining
  end

let update ctx s = update_bytes ctx (Bytes.unsafe_of_string s) 0 (String.length s)

let finalize ctx =
  let bit_len = Int64.mul ctx.total 8L in
  (* Append 0x80, pad with zeros to 56 mod 64, then the 64-bit length. *)
  let pad_len =
    let r = (ctx.buf_len + 1 + 8) mod 64 in
    if r = 0 then 1 else 1 + (64 - r)
  in
  let pad = Bytes.make (pad_len + 8) '\000' in
  Bytes.set pad 0 '\x80';
  for i = 0 to 7 do
    let byte = Int64.to_int (Int64.logand (Int64.shift_right_logical bit_len ((7 - i) * 8)) 0xFFL) in
    Bytes.set pad (pad_len + i) (Char.chr byte)
  done;
  update_bytes ctx pad 0 (Bytes.length pad);
  assert (ctx.buf_len = 0);
  let out = Bytes.create 32 in
  for i = 0 to 7 do
    let word = ctx.h.(i) in
    for j = 0 to 3 do
      Bytes.set out ((i * 4) + j) (Char.chr ((word lsr ((3 - j) * 8)) land 0xFF))
    done
  done;
  Bytes.unsafe_to_string out

let digest s =
  let ctx = init () in
  update ctx s;
  finalize ctx

let to_hex raw =
  let out = Buffer.create (String.length raw * 2) in
  String.iter (fun c -> Buffer.add_string out (Printf.sprintf "%02x" (Char.code c))) raw;
  Buffer.contents out

let hex s = to_hex (digest s)
