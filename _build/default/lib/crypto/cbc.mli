(** CBC-mode encryption of byte strings over the {!Xtea} block cipher,
    with PKCS#7 padding.

    This is what the client uses to encrypt whole XML subtrees
    ("encryption blocks" in the paper).  The IV is derived
    deterministically from the key and a caller-supplied nonce so that
    the system stays reproducible; distinct nonces give independent
    ciphertexts. *)

type prepared
(** Key material with the XTEA schedule expanded and the IV-derivation
    HMAC pads pre-absorbed.  Prepare once, use per block. *)

val prepare : string -> prepared

val encrypt_prepared : prepared -> nonce:string -> string -> string
val decrypt_prepared : prepared -> nonce:string -> string -> string

val encrypt : key:string -> nonce:string -> string -> string
(** [encrypt ~key ~nonce plaintext] returns the ciphertext (the IV is
    derivable, so it is not stored).  Output length is the input length
    rounded up to the next multiple of 8. *)

val decrypt : key:string -> nonce:string -> string -> string
(** Inverse of {!encrypt} for the same [key] and [nonce].

    @raise Invalid_argument if the ciphertext length is not a positive
    multiple of 8 or the padding is malformed. *)

val ciphertext_length : int -> int
(** [ciphertext_length n] is the ciphertext size for an [n]-byte
    plaintext: [n] rounded up to the next multiple of 8 (PKCS#7 always
    adds at least one byte). *)
