(** XTEA block cipher (Needham & Wheeler, 1997).

    64-bit block, 128-bit key, 64 Feistel rounds.  Stands in for the
    unspecified block cipher the paper uses to encrypt XML subtrees
    (see DESIGN.md substitution table). *)

type key
(** Expanded 128-bit key. *)

val key_of_string : string -> key
(** [key_of_string s] derives a key from arbitrary bytes: [s] is hashed
    with SHA-256 and the first 16 bytes become the key material. *)

val encrypt_block : key -> int64 -> int64
(** Encrypt one 64-bit block. *)

val decrypt_block : key -> int64 -> int64
(** Inverse of {!encrypt_block}. *)
