type suite = Xtea | Aes

let suite_to_string = function Xtea -> "xtea" | Aes -> "aes"

let suite_of_string = function
  | "xtea" -> Some Xtea
  | "aes" -> Some Aes
  | _ -> None

type prepared =
  | P_xtea of Cbc.prepared
  | P_aes of { key : Aes.key; iv_mac : Hmac.prepared }

let prepare suite key_material =
  match suite with
  | Xtea -> P_xtea (Cbc.prepare key_material)
  | Aes ->
    P_aes
      { key = Aes.key_of_string key_material;
        iv_mac = Hmac.prepare ~key:key_material }

let suite_of = function P_xtea _ -> Xtea | P_aes _ -> Aes

(* --- AES-CBC with PKCS#7 ------------------------------------------- *)

let aes_block = Aes.block_bytes

let aes_iv iv_mac ~nonce = Hmac.mac_prepared iv_mac ("cbc-iv\x00" ^ nonce)

let pkcs7_pad plaintext block =
  let len = String.length plaintext in
  let pad = block - (len mod block) in
  let out = Bytes.make (len + pad) (Char.chr pad) in
  Bytes.blit_string plaintext 0 out 0 len;
  out

let pkcs7_unpad padded block =
  let len = Bytes.length padded in
  if len = 0 then invalid_arg "Cipher.decrypt: empty plaintext";
  let pad = Char.code (Bytes.get padded (len - 1)) in
  if pad = 0 || pad > block || pad > len then
    invalid_arg "Cipher.decrypt: malformed padding";
  for i = len - pad to len - 1 do
    if Char.code (Bytes.get padded i) <> pad then
      invalid_arg "Cipher.decrypt: malformed padding"
  done;
  Bytes.sub_string padded 0 (len - pad)

let xor_into dst off src srcoff n =
  for i = 0 to n - 1 do
    Bytes.set dst (off + i)
      (Char.chr (Char.code (Bytes.get dst (off + i)) lxor Char.code (Bytes.get src (srcoff + i))))
  done

let aes_encrypt ~key ~iv_mac ~nonce plaintext =
  let buf = pkcs7_pad plaintext aes_block in
  let prev = Bytes.of_string (String.sub (aes_iv iv_mac ~nonce) 0 aes_block) in
  let blocks = Bytes.length buf / aes_block in
  for b = 0 to blocks - 1 do
    let off = b * aes_block in
    xor_into buf off prev 0 aes_block;
    Aes.encrypt_block key buf off;
    Bytes.blit buf off prev 0 aes_block
  done;
  Bytes.unsafe_to_string buf

let aes_decrypt ~key ~iv_mac ~nonce ciphertext =
  let len = String.length ciphertext in
  if len = 0 || len mod aes_block <> 0 then
    invalid_arg "Cipher.decrypt: ciphertext length must be a positive multiple of 16";
  let buf = Bytes.of_string ciphertext in
  let prev = Bytes.of_string (String.sub (aes_iv iv_mac ~nonce) 0 aes_block) in
  let scratch = Bytes.create aes_block in
  for b = 0 to (len / aes_block) - 1 do
    let off = b * aes_block in
    Bytes.blit buf off scratch 0 aes_block;
    Aes.decrypt_block key buf off;
    xor_into buf off prev 0 aes_block;
    Bytes.blit scratch 0 prev 0 aes_block
  done;
  pkcs7_unpad buf aes_block

(* --- Dispatch ------------------------------------------------------- *)

let encrypt prepared ~nonce plaintext =
  match prepared with
  | P_xtea p -> Cbc.encrypt_prepared p ~nonce plaintext
  | P_aes { key; iv_mac } -> aes_encrypt ~key ~iv_mac ~nonce plaintext

let decrypt prepared ~nonce ciphertext =
  match prepared with
  | P_xtea p -> Cbc.decrypt_prepared p ~nonce ciphertext
  | P_aes { key; iv_mac } -> aes_decrypt ~key ~iv_mac ~nonce ciphertext

let ciphertext_length suite n =
  match suite with
  | Xtea -> Cbc.ciphertext_length n
  | Aes -> ((n / aes_block) + 1) * aes_block
