(** Order-preserving encryption (OPE) on 64-bit integers.

    Plays the role of the Agrawal et al. (SIGMOD 2004) order-preserving
    encryption function [enc] that OPESS builds on: a strictly
    increasing, key-dependent injection from a bounded plaintext domain
    into a much larger ciphertext range.

    Construction: binary-search-style recursive range splitting.  To
    encrypt [x] in domain [\[0, 2^domain_bits)] we walk down a virtual
    balanced binary partition of the domain; at each level the
    corresponding ciphertext interval is split at a keyed pseudo-random
    interior point (kept within the middle half so interval sizes never
    collapse), and we recurse into the half containing [x].  The
    ciphertext range has [domain_bits + 16] bits of headroom, which keeps
    the mapping injective.  Decryption walks the same path by binary
    search.

    The mapping is deterministic in [key]: the same plaintext always maps
    to the same ciphertext, which OPESS then diversifies via splitting
    and scaling. *)

type t
(** An OPE instance (key + domain size). *)

val create : key:string -> domain_bits:int -> t
(** [create ~key ~domain_bits] handles plaintexts in
    [\[0, 2^domain_bits)].  [domain_bits] must be in [\[1, 40\]]. *)

val domain_max : t -> int64
(** Exclusive upper bound of the plaintext domain. *)

val range_max : t -> int64
(** Exclusive upper bound of the ciphertext range. *)

val encrypt : t -> int64 -> int64
(** [encrypt t x] for [0 <= x < domain_max t].  Strictly increasing
    in [x].
    @raise Invalid_argument if [x] is out of the domain. *)

val decrypt : t -> int64 -> int64
(** [decrypt t c] recovers [x] from [c = encrypt t x].
    @raise Not_found if [c] is not a valid ciphertext. *)
