(** Vernam-style stream encryption for element tags.

    The paper encrypts tags in the DSI index table and in translated
    queries with a one-time-pad ("Vernam cipher") for its perfect
    security.  We realise the pad as an HMAC-SHA-256 keystream expanded
    from [key] and a per-use [pad_id]; encryption is XOR, so
    [decrypt = encrypt].

    Tag translation must be {e deterministic} — the same tag must map to
    the same ciphertext so that index lookups work — so the system uses
    one pad id per distinct tag (see {!Keys.tag_pad_id}). *)

val keystream : key:string -> pad_id:string -> int -> string
(** [keystream ~key ~pad_id n] expands [n] pseudo-pad bytes. *)

val encrypt : key:string -> pad_id:string -> string -> string
(** XOR the message with the keystream. *)

val decrypt : key:string -> pad_id:string -> string -> string
(** Alias for {!encrypt} (XOR is an involution). *)

val encrypt_hex : key:string -> pad_id:string -> string -> string
(** [encrypt_hex] renders the ciphertext in hex, convenient as an opaque
    token for index tables and translated queries. *)
