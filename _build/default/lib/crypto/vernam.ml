let keystream ~key ~pad_id n =
  let prepared = Hmac.prepare ~key in
  let out = Buffer.create (max n 32) in
  let counter = ref 0 in
  while Buffer.length out < n do
    let block =
      Hmac.mac_prepared prepared (Printf.sprintf "vernam\x00%s\x00%d" pad_id !counter)
    in
    Buffer.add_string out block;
    incr counter
  done;
  Buffer.sub out 0 n

let encrypt ~key ~pad_id msg =
  let n = String.length msg in
  let pad = keystream ~key ~pad_id n in
  String.init n (fun i -> Char.chr (Char.code msg.[i] lxor Char.code pad.[i]))

let decrypt = encrypt

let encrypt_hex ~key ~pad_id msg = Sha256.to_hex (encrypt ~key ~pad_id msg)
