(** Indexed XML documents.

    A {!Doc.t} is a {!Tree.t} flattened into arrays indexed by preorder
    node id, giving O(1) parent/child/tag access and stable node
    identity — the substrate both the XPath evaluator and the DSI index
    builder work over.

    Node 0 is always the document root element.  Text leaves are {e not}
    separate nodes here: a leaf element's text is stored as its [value];
    this matches the paper's model where values live at leaves only. *)

type t

type node = int
(** Node id: preorder position in the document, root = 0. *)

val of_tree : Tree.t -> t
(** [of_tree tree] indexes the tree.
    @raise Invalid_argument if the root is a bare text node or some
    element mixes child elements with text. *)

val to_tree : t -> Tree.t
(** Reconstruct the pure tree (inverse of {!of_tree}). *)

val subtree : t -> node -> Tree.t
(** [subtree doc n] is the pure tree rooted at [n]. *)

val root : t -> node
val node_count : t -> int
val tag : t -> node -> string
val value : t -> node -> string option
(** Leaf text value, [None] for interior elements. *)

val parent : t -> node -> node option
(** [None] only for the root. *)

val children : t -> node -> node list
(** Child elements in document order (leaf elements have none). *)

val child_count : t -> node -> int

val is_leaf : t -> node -> bool
(** True if the node carries a text value (no element children). *)

val depth_of : t -> node -> int
(** Root has depth 0. *)

val height : t -> int
(** Max depth over all nodes. *)

val descendants : t -> node -> node list
(** Proper descendants (excluding [n]) in document order. *)

val descendant_or_self : t -> node -> node list

val is_ancestor : t -> node -> node -> bool
(** [is_ancestor doc a b] iff [a] is a proper ancestor of [b]. *)

val iter : t -> (node -> unit) -> unit
(** Visit every node in document (preorder) order. *)

val fold : t -> ('a -> node -> 'a) -> 'a -> 'a

val nodes_with_tag : t -> string -> node list
(** All nodes carrying the given tag, in document order. *)

val subtree_node_count : t -> node -> int
(** Number of nodes in the subtree rooted at [n] (counting [n]). *)

val pp_node : t -> Format.formatter -> node -> unit
(** Debug rendering: tag, id and value if any. *)
