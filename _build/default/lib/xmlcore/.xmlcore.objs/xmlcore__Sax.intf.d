lib/xmlcore/sax.mli: Tree
