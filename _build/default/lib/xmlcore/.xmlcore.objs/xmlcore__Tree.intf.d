lib/xmlcore/tree.mli: Format
