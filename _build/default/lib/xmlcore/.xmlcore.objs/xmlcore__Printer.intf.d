lib/xmlcore/printer.mli: Doc Tree
