lib/xmlcore/parser.ml: Buffer Char Doc List Printf String Tree
