lib/xmlcore/printer.ml: Buffer Doc List String Tree
