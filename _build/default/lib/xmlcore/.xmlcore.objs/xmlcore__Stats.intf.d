lib/xmlcore/stats.mli: Doc Format
