lib/xmlcore/parser.mli: Doc Tree
