lib/xmlcore/sax.ml: Buffer Bytes Char Hashtbl List Option Printf String Tree
