lib/xmlcore/schema.ml: Doc Format Hashtbl List Option Printf String
