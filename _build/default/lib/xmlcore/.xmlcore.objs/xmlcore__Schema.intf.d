lib/xmlcore/schema.mli: Doc Format
