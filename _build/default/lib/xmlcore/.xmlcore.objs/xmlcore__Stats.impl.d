lib/xmlcore/stats.ml: Doc Format Hashtbl List Option String
