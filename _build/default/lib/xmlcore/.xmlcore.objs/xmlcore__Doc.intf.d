lib/xmlcore/doc.mli: Format Tree
