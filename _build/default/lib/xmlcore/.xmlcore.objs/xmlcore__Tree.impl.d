lib/xmlcore/tree.ml: Format List String
