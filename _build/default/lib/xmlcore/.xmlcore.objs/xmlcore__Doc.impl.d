lib/xmlcore/doc.ml: Array Format Hashtbl List Option Tree
