type node = int

type t = {
  tags : string array;
  values : string option array;
  parents : int array;            (* -1 for root *)
  children : int list array;      (* in document order *)
  depths : int array;
  subtree_sizes : int array;      (* node count of subtree rooted here *)
  by_tag : (string, int list) Hashtbl.t;  (* doc-order node lists *)
}

let root _ = 0
let node_count t = Array.length t.tags
let tag t n = t.tags.(n)
let value t n = t.values.(n)
let parent t n = if t.parents.(n) < 0 then None else Some t.parents.(n)
let children t n = t.children.(n)
let child_count t n = List.length t.children.(n)
let is_leaf t n = t.values.(n) <> None
let depth_of t n = t.depths.(n)
let subtree_node_count t n = t.subtree_sizes.(n)

let of_tree tree =
  let tags = ref [] and values = ref [] and parents = ref [] in
  let children_rev = Hashtbl.create 64 in
  let next_id = ref 0 in
  (* Assign preorder ids; returns subtree node count. *)
  let rec walk parent node =
    match node with
    | Tree.Text _ -> invalid_arg "Doc.of_tree: bare text node (mixed content unsupported)"
    | Tree.Element (tag, child_list) ->
      let id = !next_id in
      incr next_id;
      let value, element_children =
        match child_list with
        | [ Tree.Text v ] -> Some v, []
        | cs ->
          let elements =
            List.map
              (function
                | Tree.Element _ as e -> e
                | Tree.Text _ ->
                  invalid_arg "Doc.of_tree: mixed content (text beside elements)")
              cs
          in
          None, elements
      in
      tags := tag :: !tags;
      values := value :: !values;
      parents := parent :: !parents;
      (match parent with
       | -1 -> ()
       | p ->
         let prev = Option.value ~default:[] (Hashtbl.find_opt children_rev p) in
         Hashtbl.replace children_rev p (id :: prev));
      let size =
        List.fold_left (fun acc c -> acc + walk id c) 1 element_children
      in
      size
  in
  let _total = walk (-1) tree in
  let n = !next_id in
  let tags = Array.of_list (List.rev !tags) in
  let values = Array.of_list (List.rev !values) in
  let parents = Array.of_list (List.rev !parents) in
  let children =
    Array.init n (fun i ->
        List.rev (Option.value ~default:[] (Hashtbl.find_opt children_rev i)))
  in
  let depths = Array.make n 0 in
  for i = 1 to n - 1 do
    depths.(i) <- depths.(parents.(i)) + 1
  done;
  let subtree_sizes = Array.make n 1 in
  for i = n - 1 downto 1 do
    subtree_sizes.(parents.(i)) <- subtree_sizes.(parents.(i)) + subtree_sizes.(i)
  done;
  let by_tag = Hashtbl.create 64 in
  for i = n - 1 downto 0 do
    let prev = Option.value ~default:[] (Hashtbl.find_opt by_tag tags.(i)) in
    Hashtbl.replace by_tag tags.(i) (i :: prev)
  done;
  { tags; values; parents; children; depths; subtree_sizes; by_tag }

let rec subtree t n =
  match t.values.(n) with
  | Some v -> Tree.leaf t.tags.(n) v
  | None -> Tree.element t.tags.(n) (List.map (subtree t) t.children.(n))

let to_tree t = subtree t 0

let height t = Array.fold_left max 0 t.depths

(* Preorder ids make the subtree of [n] exactly the contiguous id range
   [n, n + subtree_size n). *)
let descendants t n =
  List.init (t.subtree_sizes.(n) - 1) (fun i -> n + 1 + i)

let descendant_or_self t n =
  List.init t.subtree_sizes.(n) (fun i -> n + i)

let is_ancestor t a b = a < b && b < a + t.subtree_sizes.(a)

let iter t f =
  for i = 0 to node_count t - 1 do
    f i
  done

let fold t f acc =
  let acc = ref acc in
  iter t (fun n -> acc := f !acc n);
  !acc

let nodes_with_tag t tag = Option.value ~default:[] (Hashtbl.find_opt t.by_tag tag)

let pp_node t fmt n =
  match t.values.(n) with
  | Some v -> Format.fprintf fmt "<%s #%d = %S>" t.tags.(n) n v
  | None -> Format.fprintf fmt "<%s #%d>" t.tags.(n) n
