(** Lightweight schema summaries inferred from documents.

    The security definitions quantify over candidate databases "with
    the same schema"; this module gives that notion teeth: {!infer}
    summarises a document's structure (per-tag child sets, occurrence
    bounds, leaf domains) and {!conforms} checks a candidate against
    it.  The candidate enumerator of the secure library only emits
    documents that conform. *)

type element_shape = {
  tag : string;
  child_tags : string list;          (** tags observed as children, sorted *)
  min_children : int;
  max_children : int;
  is_leaf : bool;                    (** carries text in some occurrence *)
  leaf_domain : string list;         (** distinct observed values, sorted *)
}

type t

val infer : Doc.t -> t
(** Summarise every tag of the document. *)

val shape : t -> string -> element_shape option

val tags : t -> string list
(** All tags, sorted. *)

val root_tag : t -> string

val conforms : Doc.t -> t -> (unit, string) result
(** Every node's tag is known, its children use allowed child tags
    within the observed occurrence bounds, and leaf values come from
    the observed domain.  [Error] describes the first violation. *)

val pp : Format.formatter -> t -> unit
