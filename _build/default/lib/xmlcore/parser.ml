exception Parse_error of { position : int; message : string }

type state = { input : string; mutable pos : int }

let fail st message = raise (Parse_error { position = st.pos; message })

let peek st = if st.pos < String.length st.input then Some st.input.[st.pos] else None

let looking_at st prefix =
  let n = String.length prefix in
  st.pos + n <= String.length st.input && String.sub st.input st.pos n = prefix

let advance st n = st.pos <- st.pos + n

let expect st prefix =
  if looking_at st prefix then advance st (String.length prefix)
  else fail st (Printf.sprintf "expected %S" prefix)

let is_space = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let skip_spaces st =
  while (match peek st with Some c when is_space c -> true | _ -> false) do
    advance st 1
  done

let is_name_start = function
  | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true
  | _ -> false

(* '#' is admitted beyond XML's NameChar because the paper's running
   example uses tags like "policy#". *)
let is_name_char c =
  is_name_start c || (match c with '0' .. '9' | '-' | '.' | '#' -> true | _ -> false)

let parse_name st =
  let start = st.pos in
  (match peek st with
   | Some c when is_name_start c -> advance st 1
   | _ -> fail st "expected a name");
  while (match peek st with Some c when is_name_char c -> true | _ -> false) do
    advance st 1
  done;
  String.sub st.input start (st.pos - start)

let decode_entity st =
  (* Called just past '&'. Returns the decoded string. *)
  let semi =
    match String.index_from_opt st.input st.pos ';' with
    | Some i when i - st.pos <= 10 -> i
    | Some _ | None -> fail st "unterminated entity reference"
  in
  let name = String.sub st.input st.pos (semi - st.pos) in
  st.pos <- semi + 1;
  match name with
  | "amp" -> "&"
  | "lt" -> "<"
  | "gt" -> ">"
  | "quot" -> "\""
  | "apos" -> "'"
  | _ ->
    if String.length name > 1 && name.[0] = '#' then begin
      let code =
        try
          if name.[1] = 'x' || name.[1] = 'X' then
            int_of_string ("0x" ^ String.sub name 2 (String.length name - 2))
          else int_of_string (String.sub name 1 (String.length name - 1))
        with Failure _ -> fail st "malformed character reference"
      in
      if code < 0x80 then String.make 1 (Char.chr code)
      else begin
        (* Minimal UTF-8 encoding for non-ASCII references. *)
        let buf = Buffer.create 4 in
        let add_utf8 c =
          if c < 0x800 then begin
            Buffer.add_char buf (Char.chr (0xC0 lor (c lsr 6)));
            Buffer.add_char buf (Char.chr (0x80 lor (c land 0x3F)))
          end
          else begin
            Buffer.add_char buf (Char.chr (0xE0 lor (c lsr 12)));
            Buffer.add_char buf (Char.chr (0x80 lor ((c lsr 6) land 0x3F)));
            Buffer.add_char buf (Char.chr (0x80 lor (c land 0x3F)))
          end
        in
        add_utf8 code;
        Buffer.contents buf
      end
    end
    else fail st (Printf.sprintf "unknown entity &%s;" name)

let parse_quoted_value st =
  let quote =
    match peek st with
    | Some ('"' as q) | Some ('\'' as q) -> advance st 1; q
    | _ -> fail st "expected a quoted attribute value"
  in
  let out = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> fail st "unterminated attribute value"
    | Some c when c = quote -> advance st 1
    | Some '&' -> advance st 1; Buffer.add_string out (decode_entity st); loop ()
    | Some c -> advance st 1; Buffer.add_char out c; loop ()
  in
  loop ();
  Buffer.contents out

(* Skip <!-- ... -->, <? ... ?> and <!DOCTYPE ...> / <![CDATA handled apart. *)
let skip_misc st =
  let rec loop () =
    skip_spaces st;
    if looking_at st "<!--" then begin
      (match
         let rec find i =
           if i + 3 > String.length st.input then None
           else if String.sub st.input i 3 = "-->" then Some i
           else find (i + 1)
         in
         find (st.pos + 4)
       with
       | Some i -> st.pos <- i + 3
       | None -> fail st "unterminated comment");
      loop ()
    end
    else if looking_at st "<?" then begin
      (match
         let rec find i =
           if i + 2 > String.length st.input then None
           else if String.sub st.input i 2 = "?>" then Some i
           else find (i + 1)
         in
         find (st.pos + 2)
       with
       | Some i -> st.pos <- i + 2
       | None -> fail st "unterminated processing instruction");
      loop ()
    end
    else if looking_at st "<!DOCTYPE" then begin
      (* Skip to the matching '>' accounting for an internal subset. *)
      let depth = ref 0 and finished = ref false in
      advance st 9;
      while not !finished do
        match peek st with
        | None -> fail st "unterminated DOCTYPE"
        | Some '[' -> incr depth; advance st 1
        | Some ']' -> decr depth; advance st 1
        | Some '>' when !depth = 0 -> advance st 1; finished := true
        | Some _ -> advance st 1
      done;
      loop ()
    end
  in
  loop ()

let parse_cdata st =
  expect st "<![CDATA[";
  let close =
    let rec find i =
      if i + 3 > String.length st.input then fail st "unterminated CDATA section"
      else if String.sub st.input i 3 = "]]>" then i
      else find (i + 1)
    in
    find st.pos
  in
  let content = String.sub st.input st.pos (close - st.pos) in
  st.pos <- close + 3;
  content

let rec parse_element st =
  expect st "<";
  let tag = parse_name st in
  (* Attributes. *)
  let attrs = ref [] in
  let rec attr_loop () =
    skip_spaces st;
    match peek st with
    | Some c when is_name_start c ->
      let name = parse_name st in
      skip_spaces st;
      expect st "=";
      skip_spaces st;
      let v = parse_quoted_value st in
      attrs := Tree.attribute name v :: !attrs;
      attr_loop ()
    | Some _ | None -> ()
  in
  attr_loop ();
  let attrs = List.rev !attrs in
  if looking_at st "/>" then begin
    advance st 2;
    Tree.Element (tag, attrs)
  end
  else begin
    expect st ">";
    let children = parse_content st tag in
    Tree.Element (tag, attrs @ children)
  end

(* Parse element content until the matching close tag of [parent_tag]. *)
and parse_content st parent_tag =
  let elements = ref [] in
  let text = Buffer.create 16 in
  let finished = ref false in
  while not !finished do
    match peek st with
    | None -> fail st (Printf.sprintf "unterminated element <%s>" parent_tag)
    | Some '<' ->
      if looking_at st "</" then begin
        advance st 2;
        let close = parse_name st in
        skip_spaces st;
        expect st ">";
        if not (String.equal close parent_tag) then
          fail st (Printf.sprintf "mismatched close tag </%s> for <%s>" close parent_tag);
        finished := true
      end
      else if looking_at st "<![CDATA[" then Buffer.add_string text (parse_cdata st)
      else if looking_at st "<!--" || looking_at st "<?" then skip_misc st
      else elements := parse_element st :: !elements
    | Some '&' -> advance st 1; Buffer.add_string text (decode_entity st)
    | Some c -> advance st 1; Buffer.add_char text c
  done;
  let text_content = Buffer.contents text in
  let significant_text = String.trim text_content <> "" in
  match List.rev !elements, significant_text with
  | [], true -> [ Tree.Text text_content ]
  | [], false -> []
  | elements, false -> elements
  | _ :: _, true -> fail st (Printf.sprintf "mixed content under <%s>" parent_tag)

let parse s =
  let st = { input = s; pos = 0 } in
  skip_misc st;
  skip_spaces st;
  if peek st <> Some '<' then fail st "expected a root element";
  let root = parse_element st in
  skip_misc st;
  skip_spaces st;
  if st.pos <> String.length s then fail st "trailing content after root element";
  root

let parse_doc s = Doc.of_tree (parse s)
