(** Document statistics.

    The attacker of Section 3.3 knows, for each attribute (leaf element
    tag or attribute name), the exact multiset of values — i.e. the
    frequency histogram this module computes.  The same histograms feed
    OPESS (which must flatten them) and the attack simulators (which try
    to exploit them). *)

type histogram = (string * int) list
(** Distinct values with occurrence counts, sorted by value. *)

val leaf_tags : Doc.t -> string list
(** Distinct tags that carry text values, sorted. *)

val value_histogram : Doc.t -> tag:string -> histogram
(** Frequency histogram of the values under leaf nodes tagged [tag]. *)

val all_histograms : Doc.t -> (string * histogram) list
(** [(tag, histogram)] for every leaf tag, sorted by tag. *)

val tag_census : Doc.t -> (string * int) list
(** Count of nodes per tag, sorted by tag. *)

val distinct_count : histogram -> int
val total_count : histogram -> int

val flatness : histogram -> float
(** Ratio (min count / max count) over the histogram's entries; 1.0 is
    perfectly flat, values near 0 are highly skewed.  Empty histograms
    are flat by convention. *)

val pp_histogram : Format.formatter -> histogram -> unit
