(** XML parser for the document subset used throughout the system.

    Handles: elements, attributes (turned into ["@"]-tagged leaf
    children, before other children, in source order), text content,
    self-closing tags, comments, processing instructions, XML
    declarations and DOCTYPE (all three skipped), CDATA sections and the
    five predefined entities plus decimal/hex character references.

    Rejects (with {!Parse_error}): mismatched tags, mixed content (text
    and elements under one parent — the paper's data model excludes it),
    and malformed markup.  Whitespace-only text between elements is
    treated as insignificant and dropped. *)

exception Parse_error of { position : int; message : string }

val parse : string -> Tree.t
(** [parse s] parses a complete document, returning the root element.
    @raise Parse_error on malformed input. *)

val parse_doc : string -> Doc.t
(** [parse_doc s] = [Doc.of_tree (parse s)]. *)
