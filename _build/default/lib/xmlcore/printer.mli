(** XML serialization.

    Serialized size is what the paper's size-based attacker observes and
    what the transmission-cost model counts, so serialization is
    deterministic: attributes are emitted as ["@"]-tagged child elements
    were parsed from (i.e., real XML attributes on the opening tag), in
    document order. *)

val escape_text : string -> string
(** Escape [& < >] (text content). *)

val escape_attr : string -> string
(** Escape ampersand, angle brackets and double quote (attribute values). *)

val tree_to_string : ?indent:bool -> Tree.t -> string
(** Serialize a tree.  [indent] (default false) adds newlines and
    two-space indentation for readability; size-sensitive code must use
    the default compact form. *)

val doc_to_string : ?indent:bool -> Doc.t -> string
(** Serialize an indexed document. *)

val serialized_size : Tree.t -> int
(** [serialized_size t] = [String.length (tree_to_string t)] without
    building the intermediate string. *)
