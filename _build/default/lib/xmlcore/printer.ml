let escape_with escape_quote s =
  let needs_escape = function
    | '&' | '<' | '>' -> true
    | '"' -> escape_quote
    | _ -> false
  in
  if String.exists needs_escape s then begin
    let out = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '&' -> Buffer.add_string out "&amp;"
        | '<' -> Buffer.add_string out "&lt;"
        | '>' -> Buffer.add_string out "&gt;"
        | '"' when escape_quote -> Buffer.add_string out "&quot;"
        | c -> Buffer.add_char out c)
      s;
    Buffer.contents out
  end
  else s

let escape_text = escape_with false
let escape_attr = escape_with true

(* Split children into attribute leaves (emitted on the open tag) and
   ordinary children. *)
let partition_attributes children =
  List.partition
    (function
      | Tree.Element (tag, [ Tree.Text _ ]) -> Tree.is_attribute_tag tag
      | Tree.Element _ | Tree.Text _ -> false)
    children

let add_attributes out attrs =
  List.iter
    (function
      | Tree.Element (tag, [ Tree.Text v ]) ->
        Buffer.add_char out ' ';
        Buffer.add_string out (String.sub tag 1 (String.length tag - 1));
        Buffer.add_string out "=\"";
        Buffer.add_string out (escape_attr v);
        Buffer.add_char out '"'
      | Tree.Element _ | Tree.Text _ -> assert false)
    attrs

let rec add_tree ~indent ~level out node =
  let pad () =
    if indent then begin
      if Buffer.length out > 0 then Buffer.add_char out '\n';
      Buffer.add_string out (String.make (2 * level) ' ')
    end
  in
  match node with
  | Tree.Text v ->
    pad ();
    Buffer.add_string out (escape_text v)
  | Tree.Element (tag, children) ->
    let attrs, rest = partition_attributes children in
    pad ();
    Buffer.add_char out '<';
    Buffer.add_string out tag;
    add_attributes out attrs;
    (match rest with
     | [] -> Buffer.add_string out "/>"
     | [ Tree.Text v ] ->
       Buffer.add_char out '>';
       Buffer.add_string out (escape_text v);
       Buffer.add_string out "</";
       Buffer.add_string out tag;
       Buffer.add_char out '>'
     | rest ->
       Buffer.add_char out '>';
       List.iter (add_tree ~indent ~level:(level + 1) out) rest;
       if indent then begin
         Buffer.add_char out '\n';
         Buffer.add_string out (String.make (2 * level) ' ')
       end;
       Buffer.add_string out "</";
       Buffer.add_string out tag;
       Buffer.add_char out '>')

let tree_to_string ?(indent = false) t =
  let out = Buffer.create 1024 in
  add_tree ~indent ~level:0 out t;
  Buffer.contents out

let doc_to_string ?indent doc = tree_to_string ?indent (Doc.to_tree doc)

let serialized_size t =
  (* A Buffer-free size computation would duplicate the printer logic;
     measuring through the buffer keeps the two definitions identical. *)
  String.length (tree_to_string t)
