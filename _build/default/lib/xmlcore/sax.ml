type event =
  | Start_element of string
  | Attribute of string * string
  | Text of string
  | End_element of string

exception Parse_error of { position : int; message : string }

(* Incremental input with a compacting window: [data.[pos - base)] is
   not yet consumed; [ensure] pulls more chunks on demand and [gc]
   drops the consumed prefix so channel parsing stays bounded. *)
type input = {
  refill : unit -> string option;
  mutable data : string;
  mutable base : int;       (* absolute offset of data.[0] *)
  mutable pos : int;        (* absolute position *)
  mutable exhausted : bool;
}

let of_string s =
  { refill = (fun () -> None); data = s; base = 0; pos = 0; exhausted = true }

let of_channel ~chunk_bytes ic =
  let refill () =
    let chunk = Bytes.create chunk_bytes in
    let n = input ic chunk 0 chunk_bytes in
    if n = 0 then None else Some (Bytes.sub_string chunk 0 n)
  in
  { refill; data = ""; base = 0; pos = 0; exhausted = false }

let fail st message = raise (Parse_error { position = st.pos; message })

let gc st =
  let consumed = st.pos - st.base in
  if consumed > 1 lsl 16 then begin
    st.data <- String.sub st.data consumed (String.length st.data - consumed);
    st.base <- st.pos
  end

let rec ensure st n =
  if st.pos - st.base + n > String.length st.data && not st.exhausted then begin
    (match st.refill () with
     | Some chunk -> st.data <- st.data ^ chunk
     | None -> st.exhausted <- true);
    ensure st n
  end

let peek_at st k =
  ensure st (k + 1);
  let i = st.pos - st.base + k in
  if i < String.length st.data then Some st.data.[i] else None

let peek st = peek_at st 0

let advance st n =
  st.pos <- st.pos + n;
  gc st

let looking_at st prefix =
  let n = String.length prefix in
  ensure st n;
  let i = st.pos - st.base in
  i + n <= String.length st.data && String.sub st.data i n = prefix

let is_space = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let skip_spaces st =
  while (match peek st with Some c when is_space c -> true | _ -> false) do
    advance st 1
  done

let is_name_start = function
  | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true
  | _ -> false

let is_name_char c =
  is_name_start c
  || (match c with '0' .. '9' | '-' | '.' | '#' -> true | _ -> false)

let parse_name st =
  let out = Buffer.create 12 in
  (match peek st with
   | Some c when is_name_start c ->
     Buffer.add_char out c;
     advance st 1
   | _ -> fail st "expected a name");
  let rec loop () =
    match peek st with
    | Some c when is_name_char c ->
      Buffer.add_char out c;
      advance st 1;
      loop ()
    | _ -> ()
  in
  loop ();
  Buffer.contents out

let decode_entity st =
  (* Past '&'; read to ';'. *)
  let name = Buffer.create 8 in
  let rec loop () =
    match peek st with
    | Some ';' -> advance st 1
    | Some c when Buffer.length name <= 10 ->
      Buffer.add_char name c;
      advance st 1;
      loop ()
    | Some _ | None -> fail st "unterminated entity reference"
  in
  loop ();
  match Buffer.contents name with
  | "amp" -> "&"
  | "lt" -> "<"
  | "gt" -> ">"
  | "quot" -> "\""
  | "apos" -> "'"
  | name when String.length name > 1 && name.[0] = '#' ->
    let code =
      try
        if name.[1] = 'x' || name.[1] = 'X' then
          int_of_string ("0x" ^ String.sub name 2 (String.length name - 2))
        else int_of_string (String.sub name 1 (String.length name - 1))
      with Failure _ -> fail st "malformed character reference"
    in
    if code < 0x80 then String.make 1 (Char.chr code)
    else begin
      let out = Buffer.create 4 in
      if code < 0x800 then begin
        Buffer.add_char out (Char.chr (0xC0 lor (code lsr 6)));
        Buffer.add_char out (Char.chr (0x80 lor (code land 0x3F)))
      end
      else begin
        Buffer.add_char out (Char.chr (0xE0 lor (code lsr 12)));
        Buffer.add_char out (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
        Buffer.add_char out (Char.chr (0x80 lor (code land 0x3F)))
      end;
      Buffer.contents out
    end
  | name -> fail st (Printf.sprintf "unknown entity &%s;" name)

let parse_quoted st =
  let quote =
    match peek st with
    | Some (('"' | '\'') as q) ->
      advance st 1;
      q
    | _ -> fail st "expected a quoted attribute value"
  in
  let out = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> fail st "unterminated attribute value"
    | Some c when c = quote -> advance st 1
    | Some '&' ->
      advance st 1;
      Buffer.add_string out (decode_entity st);
      loop ()
    | Some c ->
      Buffer.add_char out c;
      advance st 1;
      loop ()
  in
  loop ();
  Buffer.contents out

let skip_until st terminator what =
  let n = String.length terminator in
  let rec loop () =
    ensure st n;
    if looking_at st terminator then advance st n
    else
      match peek st with
      | None -> fail st ("unterminated " ^ what)
      | Some _ ->
        advance st 1;
        loop ()
  in
  loop ()

let skip_misc st =
  let rec loop () =
    skip_spaces st;
    if looking_at st "<!--" then begin
      advance st 4;
      skip_until st "-->" "comment";
      loop ()
    end
    else if looking_at st "<?" then begin
      advance st 2;
      skip_until st "?>" "processing instruction";
      loop ()
    end
    else if looking_at st "<!DOCTYPE" then begin
      advance st 9;
      let depth = ref 0 and finished = ref false in
      while not !finished do
        match peek st with
        | None -> fail st "unterminated DOCTYPE"
        | Some '[' -> incr depth; advance st 1
        | Some ']' -> decr depth; advance st 1
        | Some '>' when !depth = 0 ->
          advance st 1;
          finished := true
        | Some _ -> advance st 1
      done;
      loop ()
    end
  in
  loop ()

let read_cdata st out =
  advance st 9 (* <![CDATA[ *);
  let rec loop () =
    ensure st 3;
    if looking_at st "]]>" then advance st 3
    else
      match peek st with
      | None -> fail st "unterminated CDATA section"
      | Some c ->
        Buffer.add_char out c;
        advance st 1;
        loop ()
  in
  loop ()

(* One element, recursively; [emit] receives the event stream. *)
let rec parse_element st emit =
  (* at '<' *)
  advance st 1;
  let tag = parse_name st in
  emit (Start_element tag);
  let rec attrs () =
    skip_spaces st;
    match peek st with
    | Some c when is_name_start c ->
      let name = parse_name st in
      skip_spaces st;
      if peek st <> Some '=' then fail st "expected '='";
      advance st 1;
      skip_spaces st;
      emit (Attribute (name, parse_quoted st));
      attrs ()
    | Some _ | None -> ()
  in
  attrs ();
  if looking_at st "/>" then begin
    advance st 2;
    emit (End_element tag)
  end
  else begin
    if peek st <> Some '>' then fail st "expected '>'";
    advance st 1;
    content st emit tag
  end

and content st emit parent =
  let text = Buffer.create 16 in
  let saw_element = ref false in
  let flush_text () =
    let s = Buffer.contents text in
    Buffer.clear text;
    if String.trim s <> "" then begin
      if !saw_element then fail st (Printf.sprintf "mixed content under <%s>" parent);
      emit (Text s)
    end
  in
  let rec loop () =
    match peek st with
    | None -> fail st (Printf.sprintf "unterminated element <%s>" parent)
    | Some '<' ->
      if looking_at st "</" then begin
        flush_text ();
        advance st 2;
        let close = parse_name st in
        skip_spaces st;
        if peek st <> Some '>' then fail st "expected '>'";
        advance st 1;
        if close <> parent then
          fail st (Printf.sprintf "mismatched </%s> for <%s>" close parent);
        emit (End_element parent)
      end
      else if looking_at st "<![CDATA[" then begin
        read_cdata st text;
        loop ()
      end
      else if looking_at st "<!--" || looking_at st "<?" then begin
        skip_misc st;
        loop ()
      end
      else begin
        (* Child element: text before it must be insignificant. *)
        if String.trim (Buffer.contents text) <> "" then
          fail st (Printf.sprintf "mixed content under <%s>" parent);
        Buffer.clear text;
        saw_element := true;
        parse_element st emit;
        loop ()
      end
    | Some '&' ->
      advance st 1;
      Buffer.add_string text (decode_entity st);
      loop ()
    | Some c ->
      Buffer.add_char text c;
      advance st 1;
      loop ()
  in
  loop ()

let run st emit =
  skip_misc st;
  skip_spaces st;
  if peek st <> Some '<' then fail st "expected a root element";
  parse_element st emit;
  skip_misc st;
  skip_spaces st;
  if peek st <> None then fail st "trailing content after root element"

let parse s emit = run (of_string s) emit

let parse_channel ?(chunk_bytes = 65_536) ic emit =
  run (of_channel ~chunk_bytes ic) emit

(* --- Consumers ----------------------------------------------------- *)

let tree_of_events produce =
  (* Stack of (tag, reversed children); attributes become "@" leaves. *)
  let stack = ref [] in
  let result = ref None in
  let push_child child =
    match !stack with
    | (tag, children) :: rest -> stack := (tag, child :: children) :: rest
    | [] -> result := Some child
  in
  produce (fun event ->
      match event with
      | Start_element tag -> stack := (tag, []) :: !stack
      | Attribute (name, v) -> push_child (Tree.attribute name v)
      | Text v ->
        (* Text may follow attribute leaves (e.g. a decoy-salted leaf
           element) but never a child element. *)
        (match !stack with
         | (tag, children) :: rest
           when List.for_all
                  (function
                    | Tree.Element (t, [ Tree.Text _ ]) -> Tree.is_attribute_tag t
                    | Tree.Element _ | Tree.Text _ -> false)
                  children ->
           stack := (tag, Tree.Text v :: children) :: rest
         | _ -> invalid_arg "Sax.tree_of_events: text event out of place")
      | End_element _ ->
        (match !stack with
         | (tag, children) :: rest ->
           stack := rest;
           push_child (Tree.Element (tag, List.rev children))
         | [] -> invalid_arg "Sax.tree_of_events: unbalanced end event"));
  match !result, !stack with
  | Some tree, [] -> tree
  | _ -> invalid_arg "Sax.tree_of_events: incomplete event stream"

let census s =
  let counts = Hashtbl.create 64 in
  let bump tag =
    Hashtbl.replace counts tag (1 + Option.value ~default:0 (Hashtbl.find_opt counts tag))
  in
  parse s (fun event ->
      match event with
      | Start_element tag -> bump tag
      | Attribute (name, _) -> bump ("@" ^ name)
      | Text _ | End_element _ -> ());
  Hashtbl.fold (fun tag c acc -> (tag, c) :: acc) counts []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
