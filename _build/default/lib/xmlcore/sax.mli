(** Streaming (SAX-style) XML parsing.

    Emits events instead of building a tree, so arbitrarily large
    documents can be scanned in constant memory — census-style passes
    (tag statistics, schema inference, size estimation) do not need the
    indexed document at all.  {!parse_channel} reads incrementally from
    a channel in fixed-size chunks.

    The accepted language matches {!Parser} (same element/attribute/
    entity/CDATA/comment handling, attributes as ["@"]-tagged leaf
    events), and the tree builders are verified against it in the test
    suite. *)

type event =
  | Start_element of string   (** opening tag *)
  | Attribute of string * string  (** name (without ["@"]), value *)
  | Text of string            (** significant (non-whitespace) text *)
  | End_element of string     (** closing tag (also after self-closing) *)

exception Parse_error of { position : int; message : string }

val parse : string -> (event -> unit) -> unit
(** Stream a complete document from a string.
    @raise Parse_error on malformed input (including mixed content). *)

val parse_channel : ?chunk_bytes:int -> in_channel -> (event -> unit) -> unit
(** Stream from a channel, reading [chunk_bytes] (default 64 KiB) at a
    time. *)

val tree_of_events : ((event -> unit) -> unit) -> Tree.t
(** Drive a producer and rebuild the tree — the bridge used to check
    SAX against the DOM parser: [tree_of_events (parse s)] equals
    [Parser.parse s]. *)

val census : string -> (string * int) list
(** One-pass tag census over a serialized document, sorted by tag —
    equivalent to [Stats.tag_census (Parser.parse_doc s)] without
    building anything. *)
