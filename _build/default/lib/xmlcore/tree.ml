type t =
  | Element of string * t list
  | Text of string

let element tag children = Element (tag, children)

let leaf tag v = Element (tag, [ Text v ])

let attribute name v = leaf ("@" ^ name) v

let is_attribute_tag tag = String.length tag > 0 && tag.[0] = '@'

let tag = function
  | Element (tag, _) -> Some tag
  | Text _ -> None

let rec node_count = function
  | Text _ -> 1
  | Element (_, children) -> 1 + List.fold_left (fun acc c -> acc + node_count c) 0 children

let rec depth = function
  | Text _ -> 0
  | Element (_, children) ->
    1 + List.fold_left (fun acc c -> max acc (depth c)) 0 children

let rec equal a b =
  match a, b with
  | Text x, Text y -> String.equal x y
  | Element (ta, ca), Element (tb, cb) ->
    String.equal ta tb && List.length ca = List.length cb && List.for_all2 equal ca cb
  | Text _, Element _ | Element _, Text _ -> false

let rec fold f acc t =
  let acc = f acc t in
  match t with
  | Text _ -> acc
  | Element (_, children) -> List.fold_left (fold f) acc children

let leaf_values t =
  let collect acc node =
    match node with
    | Element (tag, [ Text v ]) -> (tag, v) :: acc
    | Element _ | Text _ -> acc
  in
  List.rev (fold collect [] t)

let rec pp fmt = function
  | Text v -> Format.fprintf fmt "%S" v
  | Element (tag, children) ->
    Format.fprintf fmt "@[<hov 1><%s%a>@]" tag
      (fun fmt cs -> List.iter (fun c -> Format.fprintf fmt "@ %a" pp c) cs)
      children
