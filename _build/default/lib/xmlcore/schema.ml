type element_shape = {
  tag : string;
  child_tags : string list;
  min_children : int;
  max_children : int;
  is_leaf : bool;
  leaf_domain : string list;
}

type t = {
  shapes : (string, element_shape) Hashtbl.t;
  root : string;
}

let shape t tag = Hashtbl.find_opt t.shapes tag

let tags t =
  Hashtbl.fold (fun tag _ acc -> tag :: acc) t.shapes [] |> List.sort String.compare

let root_tag t = t.root

let infer doc =
  let acc = Hashtbl.create 32 in
  let update tag ~children ~value =
    let child_count = List.length children in
    let prev =
      Option.value
        ~default:
          { tag;
            child_tags = [];
            min_children = max_int;
            max_children = 0;
            is_leaf = false;
            leaf_domain = [] }
        (Hashtbl.find_opt acc tag)
    in
    let child_tags =
      List.sort_uniq String.compare (children @ prev.child_tags)
    in
    let leaf_domain =
      match value with
      | Some v -> List.sort_uniq String.compare (v :: prev.leaf_domain)
      | None -> prev.leaf_domain
    in
    Hashtbl.replace acc tag
      { tag;
        child_tags;
        min_children = min prev.min_children child_count;
        max_children = max prev.max_children child_count;
        is_leaf = prev.is_leaf || value <> None;
        leaf_domain }
  in
  Doc.iter doc (fun n ->
      update (Doc.tag doc n)
        ~children:(List.map (Doc.tag doc) (Doc.children doc n))
        ~value:(Doc.value doc n));
  { shapes = acc; root = Doc.tag doc (Doc.root doc) }

let conforms doc t =
  let exception Violation of string in
  let check n =
    let tag = Doc.tag doc n in
    match Hashtbl.find_opt t.shapes tag with
    | None -> raise (Violation (Printf.sprintf "unknown tag %s" tag))
    | Some shape ->
      let children = Doc.children doc n in
      let count = List.length children in
      if count < shape.min_children || count > shape.max_children then
        raise
          (Violation
             (Printf.sprintf "%s has %d children (allowed %d..%d)" tag count
                shape.min_children shape.max_children));
      List.iter
        (fun c ->
          let ct = Doc.tag doc c in
          if not (List.mem ct shape.child_tags) then
            raise (Violation (Printf.sprintf "%s may not contain %s" tag ct)))
        children;
      (match Doc.value doc n with
       | None -> ()
       | Some v ->
         if not shape.is_leaf then
           raise (Violation (Printf.sprintf "%s is not a leaf tag" tag));
         if not (List.mem v shape.leaf_domain) then
           raise
             (Violation (Printf.sprintf "%s value %S outside the domain" tag v)))
  in
  if Doc.tag doc (Doc.root doc) <> t.root then
    Error (Printf.sprintf "root is %s, expected %s" (Doc.tag doc (Doc.root doc)) t.root)
  else
    match Doc.iter doc check with
    | () -> Ok ()
    | exception Violation msg -> Error msg

let pp fmt t =
  Format.fprintf fmt "@[<v>root: %s@," t.root;
  List.iter
    (fun tag ->
      match shape t tag with
      | None -> ()
      | Some s ->
        Format.fprintf fmt "%s: children {%s} x%d..%d%s@," s.tag
          (String.concat "," s.child_tags) s.min_children s.max_children
          (if s.is_leaf then
             Printf.sprintf "; leaf domain of %d values" (List.length s.leaf_domain)
           else ""))
    (tags t);
  Format.fprintf fmt "@]"
