(** Pure XML tree values.

    This is the construction-time representation: immutable, no node
    identity.  {!Doc} turns a tree into an indexed document with node
    ids, parent links and preorder positions.

    Following the paper (footnote 1, Section 4.1) data values appear
    only at leaves and there is no mixed content: an element has either
    child elements or a single text value, never both.  Attributes are
    modelled as leaf children tagged with a ["@"]-prefixed name, which
    is how the paper's example (Figure 2) treats [@coverage]. *)

type t =
  | Element of string * t list  (** [Element (tag, children)] *)
  | Text of string              (** Leaf data value *)

val element : string -> t list -> t
(** [element tag children] builds an element node. *)

val leaf : string -> string -> t
(** [leaf tag v] is an element with a single text child:
    [Element (tag, [Text v])]. *)

val attribute : string -> string -> t
(** [attribute name v] is [leaf ("@" ^ name) v]. *)

val is_attribute_tag : string -> bool
(** [is_attribute_tag tag] tests for the ["@"] prefix. *)

val tag : t -> string option
(** Tag of an element, [None] for text. *)

val node_count : t -> int
(** Number of nodes (elements and text leaves) in the tree. *)

val depth : t -> int
(** Height of the tree: a single element has depth 1, text adds none. *)

val equal : t -> t -> bool
(** Structural equality. *)

val fold : ('a -> t -> 'a) -> 'a -> t -> 'a
(** Preorder fold over every subtree (including text leaves). *)

val leaf_values : t -> (string * string) list
(** [(tag, value)] for every leaf element/attribute, in document order.
    The tag is that of the immediate parent element of the text. *)

val pp : Format.formatter -> t -> unit
(** Debug pretty-printer (single line). *)
