type histogram = (string * int) list

let histogram_of_values values =
  let counts = Hashtbl.create 64 in
  List.iter
    (fun v ->
      Hashtbl.replace counts v (1 + Option.value ~default:0 (Hashtbl.find_opt counts v)))
    values;
  Hashtbl.fold (fun v c acc -> (v, c) :: acc) counts []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let leaf_tags doc =
  let tags = Hashtbl.create 64 in
  Doc.iter doc (fun n -> if Doc.is_leaf doc n then Hashtbl.replace tags (Doc.tag doc n) ());
  Hashtbl.fold (fun tag () acc -> tag :: acc) tags [] |> List.sort String.compare

let value_histogram doc ~tag =
  let values =
    List.filter_map (fun n -> Doc.value doc n) (Doc.nodes_with_tag doc tag)
  in
  histogram_of_values values

let all_histograms doc =
  List.map (fun tag -> tag, value_histogram doc ~tag) (leaf_tags doc)

let tag_census doc =
  let counts = Hashtbl.create 64 in
  Doc.iter doc (fun n ->
      let tag = Doc.tag doc n in
      Hashtbl.replace counts tag (1 + Option.value ~default:0 (Hashtbl.find_opt counts tag)));
  Hashtbl.fold (fun tag c acc -> (tag, c) :: acc) counts []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let distinct_count h = List.length h

let total_count h = List.fold_left (fun acc (_, c) -> acc + c) 0 h

let flatness = function
  | [] -> 1.0
  | (_, c0) :: rest ->
    let mn, mx =
      List.fold_left (fun (mn, mx) (_, c) -> min mn c, max mx c) (c0, c0) rest
    in
    float_of_int mn /. float_of_int mx

let pp_histogram fmt h =
  Format.fprintf fmt "@[<v>";
  List.iter (fun (v, c) -> Format.fprintf fmt "%-20s %d@," v c) h;
  Format.fprintf fmt "@]"
