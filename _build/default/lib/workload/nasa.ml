module Tree = Xmlcore.Tree

let publishers =
  [| "NASA"; "ADC"; "CDS"; "AAS"; "ESO"; "STScI"; "IPAC"; "JPL" |]

let cities =
  [| "Greenbelt"; "Strasbourg"; "Pasadena"; "Baltimore"; "Garching";
     "Cambridge"; "Tucson"; "Honolulu" |]

let last_names =
  [| "Hubble"; "Kuiper"; "Oort"; "Payne"; "Rubin"; "Sagan"; "Shapley";
     "Tombaugh"; "Leavitt"; "Cannon"; "Fleming"; "Hale"; "Lowell";
     "Messier"; "Herschel" |]

let words =
  [| "photometric"; "survey"; "catalog"; "spectral"; "galactic"; "stellar";
     "infrared"; "ultraviolet"; "radial"; "velocity"; "cluster"; "nebula";
     "magnitude"; "luminosity"; "parallax"; "quasar"; "binary"; "variable";
     "astrometric"; "bolometric"; "cepheid"; "photosphere"; "redshift";
     "supernova"; "interstellar"; "extinction"; "polarization"; "occultation" |]

let field_names =
  [| "RAh"; "RAm"; "RAs"; "DEd"; "DEm"; "DEs"; "Vmag"; "BV"; "UB"; "SpType";
     "Plx"; "RV"; "HD"; "DM"; "Name" |]

(* The real UW/ADC NASA documents average ~10 KB per dataset record:
   long multi-paragraph abstracts and wide field tables dominate the
   bytes, while the sensitive author fields are tiny.  We reproduce
   that ratio (a few KB per record) because it is what makes the
   fine-grained schemes cheap relative to coarse ones in Figure 9. *)
let generate ?(seed = 13L) ~datasets () =
  let rng = Crypto.Prng.create seed in
  let publisher_dist = Distribution.zipf publishers in
  let city_dist = Distribution.zipf ~exponent:0.9 cities in
  let last_dist = Distribution.zipf ~exponent:0.8 last_names in
  let word_dist = Distribution.zipf ~exponent:0.6 words in
  let phrase n =
    String.concat " " (List.init n (fun _ -> Distribution.sample word_dist rng))
  in
  let author () =
    Tree.element "author"
      [ Tree.leaf "initial"
          (String.make 1 (Char.chr (Char.code 'A' + Crypto.Prng.int rng 26)));
        Tree.leaf "last" (Distribution.sample last_dist rng) ]
  in
  let para () = Tree.leaf "para" (phrase (25 + Crypto.Prng.int rng 30)) in
  let field () =
    Tree.element "field"
      [ Tree.leaf "fname" field_names.(Crypto.Prng.int rng (Array.length field_names));
        Tree.leaf "units" (phrase 1);
        Tree.leaf "explanation" (phrase (4 + Crypto.Prng.int rng 6)) ]
  in
  let keyword () = Tree.leaf "keyword" (phrase 1) in
  let revision i =
    Tree.element "revision"
      [ Tree.leaf "date"
          (Printf.sprintf "%04d-%02d" (Crypto.Prng.int_in rng 1970 2005)
             (Crypto.Prng.int_in rng 1 12));
        Tree.leaf "description" (phrase (6 + (i mod 4))) ]
  in
  let dataset i =
    (* 1-2 authors: keeps {initial, last} the strict optimum cover. *)
    let authors = List.init (1 + Crypto.Prng.int rng 2) (fun _ -> author ()) in
    let paras = List.init (3 + Crypto.Prng.int rng 5) (fun _ -> para ()) in
    let fields = List.init (4 + Crypto.Prng.int rng 8) (fun _ -> field ()) in
    let keywords = List.init (2 + Crypto.Prng.int rng 4) (fun _ -> keyword ()) in
    let revisions = List.init (1 + Crypto.Prng.int rng 3) revision in
    Tree.element "dataset"
      (List.concat
         [ [ Tree.leaf "title" (Printf.sprintf "%s %d" (phrase 4) i);
             Tree.leaf "altname" (Printf.sprintf "ADC-%05d" (Crypto.Prng.int rng 99_999));
             Tree.leaf "date"
               (Printf.sprintf "%04d-%02d" (Crypto.Prng.int_in rng 1970 2005)
                  (Crypto.Prng.int_in rng 1 12));
             Tree.leaf "publisher" (Distribution.sample publisher_dist rng);
             Tree.leaf "city" (Distribution.sample city_dist rng) ];
           authors;
           [ Tree.leaf "age" (string_of_int (Crypto.Prng.int_in rng 1 40));
             Tree.element "keywords" keywords;
             Tree.element "abstract" paras;
             Tree.element "tableHead" fields;
             Tree.element "history" revisions ] ])
  in
  Xmlcore.Doc.of_tree (Tree.element "datasets" (List.init datasets dataset))

let constraints () =
  [ Secure.Sc.parse "//author:(/initial, /last)";
    Secure.Sc.parse "//dataset:(/title, //last)";
    Secure.Sc.parse "//dataset:(/publisher, //last)";
    Secure.Sc.parse "//dataset:(/date, //initial)";
    Secure.Sc.parse "//dataset:(/city, //initial)";
    Secure.Sc.parse "//dataset:(/age, //initial)" ]

(* One dataset record serializes to roughly 3 KB. *)
let datasets_for_bytes bytes = max 1 (bytes / 3_000)
