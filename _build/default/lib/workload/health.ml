module Tree = Xmlcore.Tree

(* Figure 2's hospital document, values verbatim where legible. *)
let tree () =
  let leaf = Tree.leaf in
  let el = Tree.element in
  let attr = Tree.attribute in
  el "hospital"
    [ el "patient"
        [ leaf "pname" "Betty";
          leaf "SSN" "763895";
          el "treat" [ leaf "disease" "diarrhea"; leaf "doctor" "Smith" ];
          el "treat" [ leaf "disease" "flu"; leaf "doctor" "Walker" ];
          leaf "age" "35";
          el "insurance" [ attr "coverage" "1000000"; leaf "policy#" "34221"; leaf "policy#" "26544" ] ];
      el "patient"
        [ leaf "pname" "Matt";
          leaf "SSN" "276543";
          el "treat" [ leaf "disease" "leukemia"; leaf "doctor" "Brown" ];
          el "treat" [ leaf "disease" "diarrhea"; leaf "doctor" "Smith" ];
          leaf "age" "40";
          el "insurance" [ attr "coverage" "10000"; leaf "policy#" "78543" ];
          el "insurance" [ attr "coverage" "5000"; leaf "policy#" "26544" ] ] ]

let doc () = Xmlcore.Doc.of_tree (tree ())

let constraints () =
  [ Secure.Sc.parse "//insurance";
    Secure.Sc.parse "//patient:(/pname, /SSN)";
    Secure.Sc.parse "//patient:(/pname, //disease)";
    Secure.Sc.parse "//treat:(/disease, /doctor)" ]

let diseases =
  [| "diarrhea"; "flu"; "leukemia"; "diabetes"; "asthma"; "anemia";
     "migraine"; "arthritis"; "bronchitis"; "hypertension"; "eczema";
     "pneumonia"; "hepatitis"; "measles"; "gastritis" |]

let doctors =
  [| "Smith"; "Walker"; "Brown"; "Jones"; "Garcia"; "Miller"; "Davis";
     "Wilson"; "Moore"; "Taylor"; "Lee"; "Clark" |]

let first_names =
  [| "Betty"; "Matt"; "Alice"; "Bob"; "Carol"; "David"; "Erin"; "Frank";
     "Grace"; "Henry"; "Iris"; "Jack"; "Karen"; "Leo"; "Mona"; "Nick";
     "Olga"; "Paul"; "Quinn"; "Rita" |]

let coverages = [| "5000"; "10000"; "50000"; "100000"; "500000"; "1000000" |]

let generate ?(seed = 7L) ~patients () =
  let rng = Crypto.Prng.create seed in
  let disease_dist = Distribution.zipf diseases in
  let doctor_dist = Distribution.zipf ~exponent:0.8 doctors in
  let coverage_dist = Distribution.zipf ~exponent:0.5 coverages in
  let patient i =
    let name =
      Printf.sprintf "%s%d" first_names.(Crypto.Prng.int rng (Array.length first_names)) i
    in
    let ssn = Printf.sprintf "%09d" (Crypto.Prng.int rng 999_999_999) in
    let treats =
      List.init
        (1 + Crypto.Prng.int rng 3)
        (fun _ ->
          Tree.element "treat"
            [ Tree.leaf "disease" (Distribution.sample disease_dist rng);
              Tree.leaf "doctor" (Distribution.sample doctor_dist rng) ])
    in
    let insurance =
      Tree.element "insurance"
        [ Tree.attribute "coverage" (Distribution.sample coverage_dist rng);
          Tree.leaf "policy#" (Printf.sprintf "%05d" (Crypto.Prng.int rng 99_999)) ]
    in
    Tree.element "patient"
      ([ Tree.leaf "pname" name; Tree.leaf "SSN" ssn ]
      @ treats
      @ [ Tree.leaf "age" (string_of_int (Crypto.Prng.int_in rng 1 99)); insurance ])
  in
  Xmlcore.Doc.of_tree (Tree.element "hospital" (List.init patients patient))
