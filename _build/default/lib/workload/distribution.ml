type t = {
  values : string array;
  cumulative : float array; (* cumulative.(i) = P(index <= i), last = 1.0 *)
}

let of_weights values weights =
  let total = Array.fold_left ( +. ) 0.0 weights in
  if total <= 0.0 then invalid_arg "Distribution: weights must sum to a positive value";
  let cumulative = Array.make (Array.length weights) 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i w ->
      acc := !acc +. (w /. total);
      cumulative.(i) <- !acc)
    weights;
  cumulative.(Array.length cumulative - 1) <- 1.0;
  { values; cumulative }

let uniform values =
  if Array.length values = 0 then invalid_arg "Distribution.uniform: empty support";
  of_weights values (Array.make (Array.length values) 1.0)

let zipf ?(exponent = 1.0) values =
  if Array.length values = 0 then invalid_arg "Distribution.zipf: empty support";
  of_weights values
    (Array.init (Array.length values) (fun i ->
         1.0 /. Float.pow (float_of_int (i + 1)) exponent))

let weighted pairs =
  if pairs = [] then invalid_arg "Distribution.weighted: empty support";
  let values = Array.of_list (List.map fst pairs) in
  let weights = Array.of_list (List.map snd pairs) in
  of_weights values weights

let sample t rng =
  let u = Crypto.Prng.float rng 1.0 in
  (* Binary search for the first cumulative weight >= u. *)
  let rec find lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if t.cumulative.(mid) >= u then find lo mid else find (mid + 1) hi
  in
  t.values.(find 0 (Array.length t.values - 1))

let support t = t.values
