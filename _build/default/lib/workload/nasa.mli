(** NASA-like synthetic astronomical dataset (the paper's real
    dataset, substituted — see DESIGN.md).

    Mimics the University of Washington repository's NASA ADC dataset
    shape at the granularity the paper's constraint graph (Figure 8(b))
    uses: [datasets/dataset] records with title, date, publisher, city,
    one or more [author(initial, last)] entries, an age field and an
    abstract.  Documents are deeper and more text-heavy than XMark's,
    which is what drives the Qm/Ql differences in Figure 9. *)

val generate : ?seed:int64 -> datasets:int -> unit -> Xmlcore.Doc.t

val constraints : unit -> Secure.Sc.t list
(** Association SCs whose optimal cover is [{initial, last}] — the
    cover the paper reports for its NASA experiments. *)

val datasets_for_bytes : int -> int
(** Approximate dataset count that serializes to the requested size. *)
