module Tree = Xmlcore.Tree

let venues = [| "VLDB"; "SIGMOD"; "ICDE"; "EDBT"; "PODS"; "CIDR" |]

let surnames =
  [| "Wang"; "Lakshmanan"; "Chen"; "Garcia"; "Mueller"; "Tanaka"; "Okafor";
     "Silva"; "Kowalski"; "Nguyen"; "Haddad"; "Johansson"; "Rossi"; "Kim" |]

let topic_words =
  [| "secure"; "query"; "evaluation"; "encrypted"; "index"; "xml"; "stream";
     "join"; "adaptive"; "distributed"; "cache"; "transactional"; "approximate";
     "graph"; "provenance"; "skyline" |]

let generate ?(seed = 19L) ~papers () =
  let rng = Crypto.Prng.create seed in
  let author_dist = Distribution.zipf ~exponent:0.9 surnames in
  let venue_dist = Distribution.zipf ~exponent:0.7 venues in
  let word_dist = Distribution.zipf ~exponent:0.6 topic_words in
  let phrase n =
    String.concat " " (List.init n (fun _ -> Distribution.sample word_dist rng))
  in
  let paper i =
    let authors =
      List.init
        (1 + Crypto.Prng.int rng 3)
        (fun _ -> Tree.leaf "author" (Distribution.sample author_dist rng))
    in
    let reviews =
      List.init
        (2 + Crypto.Prng.int rng 2)
        (fun _ ->
          Tree.element "review"
            [ Tree.leaf "reviewer" (Distribution.sample author_dist rng);
              Tree.leaf "score" (string_of_int (1 + Crypto.Prng.int rng 5));
              Tree.leaf "comment" (phrase (4 + Crypto.Prng.int rng 8)) ])
    in
    Tree.element "inproceedings"
      (List.concat
         [ [ Tree.leaf "title" (Printf.sprintf "%s %d" (phrase 4) i) ];
           authors;
           [ Tree.leaf "pages" (Printf.sprintf "%d-%d" (i * 12) ((i * 12) + 11));
             Tree.leaf "ee" (Printf.sprintf "https://doi.example/10.1/%06d" i) ];
           reviews ])
  in
  (* Group papers into proceedings of ~15, proceedings into venue
     series: depth root -> series -> proceedings -> inproceedings ->
     review -> leaf = 5. *)
  let per_proc = 15 in
  let proc_count = max 1 ((papers + per_proc - 1) / per_proc) in
  let proceedings =
    List.init proc_count (fun p ->
        let first = p * per_proc in
        let count = min per_proc (papers - first) in
        Tree.element "proceedings"
          (Tree.leaf "year" (string_of_int (1995 + (p mod 12)))
           :: Tree.leaf "isbn" (Printf.sprintf "978-%05d" (Crypto.Prng.int rng 99_999))
           :: List.init count (fun i -> paper (first + i))))
  in
  let by_venue = Hashtbl.create 8 in
  List.iter
    (fun proc ->
      let venue = Distribution.sample venue_dist rng in
      let prev = Option.value ~default:[] (Hashtbl.find_opt by_venue venue) in
      Hashtbl.replace by_venue venue (proc :: prev))
    proceedings;
  let series =
    Hashtbl.fold
      (fun venue procs acc ->
        Tree.element "series" (Tree.leaf "venue" venue :: procs) :: acc)
      by_venue []
  in
  Xmlcore.Doc.of_tree (Tree.element "dblp" series)

let constraints () =
  [ Secure.Sc.parse "//inproceedings:(/author, /title)";
    Secure.Sc.parse "//review:(/reviewer, /score)";
    Secure.Sc.parse "//inproceedings:(/title, //reviewer)" ]

(* One paper with reviews serializes to roughly 700 bytes. *)
let papers_for_bytes bytes = max 1 (bytes / 700)
