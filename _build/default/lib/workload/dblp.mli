(** DBLP-like bibliography data — a third workload beyond the paper's
    two, with a deeper hierarchy (venue series → proceedings →
    inproceedings → authors) that stresses the structural joins and the
    Qm query family harder than XMark/NASA do.

    The privacy scenario: a consortium hosts its submission/review
    database; who authored which submission and who reviewed what are
    the protected associations. *)

val generate : ?seed:int64 -> papers:int -> unit -> Xmlcore.Doc.t

val constraints : unit -> Secure.Sc.t list
(** Protect the author↔title association, the reviewer↔paper
    association, and review scores wholesale. *)

val papers_for_bytes : int -> int
