(** XMark-like synthetic auction data (the paper's synthetic dataset).

    Mimics the slice of the XMark benchmark schema the paper's
    constraint graph mentions (Figure 8(a)): [site/people/person] with
    name, emailaddress, address (street, city, country, zipcode),
    creditcard and a profile with an [@income] attribute, interests and
    age.  Person counts scale the document; leaf values are drawn from
    Zipf-skewed pools so the frequency-attack surface matches the
    paper's model.  See DESIGN.md for why this substitutes for the real
    XMark generator. *)

val generate : ?seed:int64 -> persons:int -> unit -> Xmlcore.Doc.t

val constraints : unit -> Secure.Sc.t list
(** Association SCs whose optimal cover is [{creditcard, name}] — the
    cover the paper reports for its XMark experiments. *)

val persons_for_bytes : int -> int
(** Approximate person count that serializes to the requested size. *)
