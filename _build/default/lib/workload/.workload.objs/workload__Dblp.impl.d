lib/workload/dblp.ml: Crypto Distribution Hashtbl List Option Printf Secure String Xmlcore
