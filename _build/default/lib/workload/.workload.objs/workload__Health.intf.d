lib/workload/health.mli: Secure Xmlcore
