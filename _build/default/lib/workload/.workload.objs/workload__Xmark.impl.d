lib/workload/xmark.ml: Array Crypto Distribution List Printf Secure Xmlcore
