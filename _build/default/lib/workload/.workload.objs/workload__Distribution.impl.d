lib/workload/distribution.ml: Array Crypto Float List
