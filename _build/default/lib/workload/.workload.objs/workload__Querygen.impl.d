lib/workload/querygen.ml: Array Crypto Hashtbl List Option String Xmlcore Xpath
