lib/workload/health.ml: Array Crypto Distribution List Printf Secure Xmlcore
