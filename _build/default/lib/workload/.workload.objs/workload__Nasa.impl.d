lib/workload/nasa.ml: Array Char Crypto Distribution List Printf Secure String Xmlcore
