lib/workload/nasa.mli: Secure Xmlcore
