lib/workload/querygen.mli: Xmlcore Xpath
