lib/workload/xmark.mli: Secure Xmlcore
