lib/workload/distribution.mli: Crypto
