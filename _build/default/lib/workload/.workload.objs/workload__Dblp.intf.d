lib/workload/dblp.mli: Secure Xmlcore
