(** The paper's running example: the health care database of Figure 2
    and the security constraints of Example 3.1. *)

val tree : unit -> Xmlcore.Tree.t
(** The hospital document of Figure 2 (plaintext, without decoys —
    decoys are added by encryption). *)

val doc : unit -> Xmlcore.Doc.t

val constraints : unit -> Secure.Sc.t list
(** SC1..SC4 of Example 3.1: //insurance;
    //patient:(/pname, /SSN); //patient:(/pname, //disease);
    //treat:(/disease, /doctor). *)

val generate : ?seed:int64 -> patients:int -> unit -> Xmlcore.Doc.t
(** A scaled-up hospital database in the same schema, for experiments:
    [patients] patient records with Zipf-distributed diseases, doctors
    and insurance coverage values. *)
