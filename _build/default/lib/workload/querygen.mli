(** Query workload generator (Section 7.1's query set).

    Three families over any document:
    - [Qs] — output the children of the root,
    - [Qm] — output nodes at depth [h/2] (h = tree height),
    - [Ql] — output leaf nodes,
    plus a fourth family beyond the paper's three:
    - [Qv] — leaf-output queries carrying a value predicate, to
      exercise the OPESS/B-tree path.

    Queries are tag paths from the root to a sampled target node, with
    a random subset of steps compressed into descendant ([//]) axes. *)

type family = Qs | Qm | Ql | Qv

val family_to_string : family -> string
val all_families : family list

val generate :
  ?seed:int64 -> Xmlcore.Doc.t -> family -> count:int -> Xpath.Ast.path list
(** [generate doc family ~count] returns up to [count] distinct
    queries (fewer when the document offers less variety).  Every query
    is guaranteed non-empty on [doc]. *)
