module Tree = Xmlcore.Tree

let first_names =
  [| "Kasidit"; "Ewa"; "Moustapha"; "Rosalia"; "Shooichi"; "Jinpo"; "Fatima";
     "Huei"; "Malgorzata"; "Dirk"; "Amitabha"; "Carmela"; "Benjamin"; "Yuki";
     "Anna"; "Piotr"; "Leon"; "Sara"; "Tomas"; "Ines" |]

let last_names =
  [| "Luo"; "Santos"; "Galang"; "Molina"; "Kobayashi"; "Weber"; "Novak";
     "Fischer"; "Rossi"; "Larsson"; "Vega"; "Okafor"; "Demir"; "Haas" |]

let cities =
  [| "Vancouver"; "Seoul"; "Amsterdam"; "Toronto"; "Lisbon"; "Oslo";
     "Kyoto"; "Napoli"; "Gdansk"; "Quito" |]

let countries = [| "Canada"; "Korea"; "Netherlands"; "Portugal"; "Norway"; "Japan" |]

let interests =
  [| "category1"; "category2"; "category3"; "category4"; "category5";
     "category6"; "category7"; "category8" |]

let generate ?(seed = 11L) ~persons () =
  let rng = Crypto.Prng.create seed in
  let name_dist =
    Distribution.zipf
      (Array.init 60 (fun i ->
           Printf.sprintf "%s %s"
             first_names.(i mod Array.length first_names)
             last_names.((i * 7) mod Array.length last_names)))
  in
  let city_dist = Distribution.zipf ~exponent:0.9 cities in
  let country_dist = Distribution.zipf ~exponent:0.7 countries in
  let interest_dist = Distribution.zipf interests in
  let income_dist =
    Distribution.zipf ~exponent:0.8
      (Array.init 25 (fun i -> string_of_int (20_000 + (i * 4_000))))
  in
  let person i =
    let creditcard =
      Printf.sprintf "%04d %04d %04d %04d" (Crypto.Prng.int rng 10_000)
        (Crypto.Prng.int rng 10_000) (Crypto.Prng.int rng 10_000)
        (Crypto.Prng.int rng 10_000)
    in
    let interest_count = Crypto.Prng.int rng 4 in
    Tree.element "person"
      [ Tree.leaf "name" (Distribution.sample name_dist rng);
        Tree.leaf "emailaddress"
          (Printf.sprintf "mailto:person%d@example.net" i);
        Tree.element "address"
          [ Tree.leaf "street" (Printf.sprintf "%d Main St" (1 + Crypto.Prng.int rng 99));
            Tree.leaf "city" (Distribution.sample city_dist rng);
            Tree.leaf "country" (Distribution.sample country_dist rng);
            Tree.leaf "zipcode" (string_of_int (10_000 + Crypto.Prng.int rng 89_999)) ];
        Tree.leaf "creditcard" creditcard;
        Tree.element "profile"
          (Tree.attribute "income" (Distribution.sample income_dist rng)
           :: Tree.leaf "age" (string_of_int (Crypto.Prng.int_in rng 18 80))
           :: List.init interest_count (fun _ ->
                  Tree.leaf "interest" (Distribution.sample interest_dist rng))) ]
  in
  Xmlcore.Doc.of_tree
    (Tree.element "site" [ Tree.element "people" (List.init persons person) ])

let constraints () =
  [ Secure.Sc.parse "//person:(/name, /creditcard)";
    Secure.Sc.parse "//person:(/name, /emailaddress)";
    Secure.Sc.parse "//person:(/profile/@income, /creditcard)";
    Secure.Sc.parse "//person:(/address/city, /creditcard)" ]

(* One person serializes to roughly 360 bytes. *)
let persons_for_bytes bytes = max 1 (bytes / 360)
