(** Value distributions for the synthetic workload generators.

    The attacker model is frequency-based, so the shape of value
    distributions is a first-class experimental knob: Zipf-skewed
    domains are the interesting case for OPESS (Figure 6 flattens a
    skew), uniform domains the degenerate one. *)

type t

val uniform : string array -> t
(** Every value equally likely. *)

val zipf : ?exponent:float -> string array -> t
(** Zipf over the value array: probability of the i-th value
    proportional to [1/(i+1)^exponent] (default exponent 1.0). *)

val weighted : (string * float) list -> t
(** Explicit weights (need not be normalised). *)

val sample : t -> Crypto.Prng.t -> string

val support : t -> string array
