module Ast = Xpath.Ast
module Doc = Xmlcore.Doc

type family = Qs | Qm | Ql | Qv

let family_to_string = function
  | Qs -> "Qs"
  | Qm -> "Qm"
  | Ql -> "Ql"
  | Qv -> "Qv"

let all_families = [ Qs; Qm; Ql; Qv ]

(* Tag chain from the root to [node], root first. *)
let tag_chain doc node =
  let rec up acc n =
    let acc = Doc.tag doc n :: acc in
    match Doc.parent doc n with
    | None -> acc
    | Some p -> up acc p
  in
  up [] node

(* Build a path from a tag chain, randomly turning some child steps
   into descendant steps (and dropping the intermediate tags they
   absorb is not needed — // still names the next tag). *)
let path_of_chain rng chain =
  let steps =
    List.mapi
      (fun i tag ->
        let axis =
          if i = 0 then Ast.Child (* the root step of an absolute path *)
          else if Crypto.Prng.int rng 100 < 30 then Ast.Descendant_or_self
          else Ast.Child
        in
        Ast.step axis (Ast.Tag tag))
      chain
  in
  Ast.path ~absolute:true steps

(* Sample distinct target nodes at a given depth predicate.  Sampling
   is per distinct tag first (one random representative each), so every
   schema element — encrypted or not — is fairly represented in the
   workload; remaining slots are filled with random extra nodes. *)
let targets doc rng ~wanted ~eligible =
  let by_tag = Hashtbl.create 32 in
  Doc.iter doc (fun n ->
      if eligible n then begin
        let tag = Doc.tag doc n in
        let prev = Option.value ~default:[] (Hashtbl.find_opt by_tag tag) in
        Hashtbl.replace by_tag tag (n :: prev)
      end);
  let tags = Array.of_seq (Hashtbl.to_seq_keys by_tag) in
  Array.sort String.compare tags;
  Crypto.Prng.shuffle rng tags;
  let representatives =
    Array.to_list
      (Array.map
         (fun tag ->
           Crypto.Prng.choice rng (Array.of_list (Hashtbl.find by_tag tag)))
         tags)
  in
  let extras =
    let pool = Array.of_list (List.concat_map (fun t -> Hashtbl.find by_tag t) (Array.to_list tags)) in
    if Array.length pool = 0 then []
    else begin
      Crypto.Prng.shuffle rng pool;
      Array.to_list (Array.sub pool 0 (min wanted (Array.length pool)))
    end
  in
  let rec take k = function
    | [] -> []
    | x :: rest -> if k = 0 then [] else x :: take (k - 1) rest
  in
  take wanted (representatives @ extras)

let distinct_paths paths =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun p ->
      let s = Ast.to_string p in
      if Hashtbl.mem seen s then false
      else begin
        Hashtbl.add seen s ();
        true
      end)
    paths

let generate ?(seed = 17L) doc family ~count =
  let rng = Crypto.Prng.create seed in
  let height = Doc.height doc in
  let depth_wanted =
    match family with
    | Qs -> 1
    | Qm -> max 1 (height / 2)
    | Ql | Qv -> height (* refined by the eligibility predicate below *)
  in
  let eligible n =
    match family with
    | Qs -> Doc.depth_of doc n = 1
    | Qm -> Doc.depth_of doc n = depth_wanted
    | Ql | Qv -> Doc.is_leaf doc n
  in
  (* Oversample: distinct tag chains collapse after dedup. *)
  let nodes = targets doc rng ~wanted:(count * 5) ~eligible in
  let base = List.map (fun n -> n, path_of_chain rng (tag_chain doc n)) nodes in
  let paths =
    match family with
    | Qs | Qm | Ql -> List.map snd base
    | Qv ->
      (* Attach an equality or range predicate on the target leaf's
         value to the leaf's parent step, outputting the parent. *)
      List.filter_map
        (fun (n, p) ->
          match Doc.value doc n, Doc.parent doc n with
          | Some v, Some _ ->
            (match List.rev p.Ast.steps with
             | leaf_step :: parent_step :: above ->
               let op =
                 if Crypto.Prng.bool rng
                    && float_of_string_opt v <> None
                 then Ast.Ge
                 else Ast.Eq
               in
               let pred =
                 Ast.Compare
                   ( Ast.path ~absolute:false
                       [ Ast.step Ast.Child leaf_step.Ast.test ],
                     op, v )
               in
               let parent_step =
                 { parent_step with
                   Ast.predicates = parent_step.Ast.predicates @ [ pred ] }
               in
               Some { p with Ast.steps = List.rev (parent_step :: above) }
             | _ -> None)
          | _ -> None)
        base
  in
  let paths = distinct_paths paths in
  (* Keep only queries that are non-empty on the document. *)
  let nonempty = List.filter (fun p -> Xpath.Eval.matches doc p) paths in
  let rec take k = function
    | [] -> []
    | x :: rest -> if k = 0 then [] else x :: take (k - 1) rest
  in
  take count nonempty
